/**
 * @file
 * Backend conformance suite for the pluggable main-memory layer:
 * shared contract tests run against both registered backends
 * ("fixed", "ddr") through mem::MemRegistry, plus model-specific
 * tests for the fixed-latency sink and the banked FR-FCFS controller.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/ddr.hh"
#include "mem/dram.hh"
#include "mem/memregistry.hh"
#include "sim/eventq.hh"
#include "sim/fault/injector.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace tlsim;
using namespace tlsim::mem;

namespace
{

/**
 * One conformance configuration: a registry name plus options that
 * put the backend under comparable contention (small service
 * capacity so queueing is observable).
 */
struct BackendParam
{
    const char *name;
    conf::OptionMap options;
};

std::string
paramName(const ::testing::TestParamInfo<BackendParam> &info)
{
    return info.param.name;
}

class MemBackendConformance
    : public ::testing::TestWithParam<BackendParam>
{
  protected:
    std::unique_ptr<MemBackend>
    build(EventQueue &eq, stats::StatGroup *root)
    {
        const BackendParam &p = GetParam();
        return MemRegistry::build(
            p.name, MemBuildContext{eq, root, p.options, nullptr});
    }
};

} // namespace

// ---------------------------------------------------------------------
// Conformance: contract tests every backend must pass.
// ---------------------------------------------------------------------

TEST_P(MemBackendConformance, RegistryBuildsNamedBackend)
{
    EventQueue eq;
    stats::StatGroup root("root");
    auto dram = build(eq, &root);
    EXPECT_EQ(dram->backendName(), GetParam().name);
    EXPECT_TRUE(MemRegistry::known(GetParam().name));
}

TEST_P(MemBackendConformance, SameBlockReadsCompleteInIssueOrder)
{
    EventQueue eq;
    stats::StatGroup root("root");
    auto dram = build(eq, &root);
    std::vector<int> order;
    std::vector<Tick> times;
    for (int i = 0; i < 16; ++i) {
        dram->read(0x40, 0, [&, i](Tick t) {
            order.push_back(i);
            times.push_back(t);
        });
    }
    eq.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GE(times[i], times[i - 1]);
    EXPECT_EQ(dram->reads.value(), 16.0);
    EXPECT_EQ(dram->inService(), 0);
}

TEST_P(MemBackendConformance, BackpressureDelaysExcessRequests)
{
    EventQueue eq;
    stats::StatGroup root("root");
    auto dram = build(eq, &root);
    // Lone read: the uncontended service time.
    Tick lone = 0;
    dram->read(0x40, 0, [&](Tick t) { lone = t; });
    eq.run();
    // A burst far beyond any backend's service capacity must stretch
    // past the lone latency (bounded slots / bounded command queues).
    std::vector<Tick> times;
    for (int i = 0; i < 32; ++i)
        dram->read(0x40, lone, [&](Tick t) { times.push_back(t); });
    eq.run();
    ASSERT_EQ(times.size(), 32u);
    EXPECT_GT(times.back() - lone, lone);
    EXPECT_GT(dram->queueDelay.maxValue(), 0.0);
}

TEST_P(MemBackendConformance, WritebacksContendAndSampleQueueDelay)
{
    EventQueue eq;
    stats::StatGroup root("root");
    auto dram = build(eq, &root);
    // Regression (PR 8 satellite): writebacks must sample queueDelay
    // exactly like reads — one sample per request, nonzero under
    // contention.
    for (int i = 0; i < 32; ++i)
        dram->write(0x40, 0);
    Tick done = 0;
    dram->read(0x80, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(dram->writes.value(), 32.0);
    EXPECT_EQ(dram->queueDelay.count(), 33u);
    EXPECT_GT(dram->queueDelay.maxValue(), 0.0);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(dram->inService(), 0);
}

TEST_P(MemBackendConformance, ReplayIsDeterministic)
{
    auto run = [&](std::vector<Tick> &times) {
        EventQueue eq;
        stats::StatGroup root("root");
        auto dram = build(eq, &root);
        for (int i = 0; i < 24; ++i) {
            Addr block = static_cast<Addr>((i * 37) % 512);
            if (i % 5 == 2) {
                dram->write(block, 0);
            } else {
                dram->read(block, 0,
                           [&](Tick t) { times.push_back(t); });
            }
        }
        eq.run();
    };
    std::vector<Tick> first, second;
    run(first);
    run(second);
    EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, MemBackendConformance,
    ::testing::Values(
        BackendParam{"fixed", {}},
        BackendParam{"ddr",
                     {{"channels", 1},
                      {"ranksPerChannel", 1},
                      {"banksPerRank", 2},
                      {"queueDepth", 4},
                      {"tREFI", 0}}}),
    paramName);

// ---------------------------------------------------------------------
// Registry error handling.
// ---------------------------------------------------------------------

TEST(MemRegistry, UnknownBackendAndOptionAreFatal)
{
    EventQueue eq;
    stats::StatGroup root("root");
    conf::OptionMap none;
    EXPECT_THROW(MemRegistry::build(
                     "bogus", MemBuildContext{eq, &root, none, nullptr}),
                 FatalError);
    conf::OptionMap typo{{"latencey", 100}};
    EXPECT_THROW(MemRegistry::build(
                     "fixed", MemBuildContext{eq, &root, typo, nullptr}),
                 FatalError);
    conf::OptionMap not_ddr{{"latency", 100}};
    EXPECT_THROW(
        MemRegistry::build("ddr",
                           MemBuildContext{eq, &root, not_ddr, nullptr}),
        FatalError);
}

TEST(MemRegistry, FixedOptionsConfigureLatencyAndSlots)
{
    EventQueue eq;
    stats::StatGroup root("root");
    conf::OptionMap options{{"latency", 100}, {"maxOutstanding", 1}};
    auto dram = MemRegistry::build(
        "fixed", MemBuildContext{eq, &root, options, nullptr});
    std::vector<Tick> times;
    dram->read(1, 0, [&](Tick t) { times.push_back(t); });
    dram->read(2, 0, [&](Tick t) { times.push_back(t); });
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 100u);
    EXPECT_EQ(times[1], 200u); // serialized by the single slot
}

// ---------------------------------------------------------------------
// Fixed-backend unit tests (unchanged behavior, paper Table 3).
// ---------------------------------------------------------------------

TEST(Dram, ReadLatency300)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    Tick done = 0;
    dram.read(0x10, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, 300u);
}

TEST(Dram, CustomLatency)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root, 100, 4);
    Tick done = 0;
    dram.read(0x10, 50, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, 150u);
}

TEST(Dram, EightOverlapOutstanding)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    std::vector<Tick> done;
    for (int i = 0; i < 8; ++i)
        dram.read(i, 0, [&](Tick t) { done.push_back(t); });
    eq.run();
    ASSERT_EQ(done.size(), 8u);
    for (Tick t : done)
        EXPECT_EQ(t, 300u); // all in parallel
}

TEST(Dram, NinthRequestQueues)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    std::vector<Tick> done;
    for (int i = 0; i < 9; ++i)
        dram.read(i, 0, [&](Tick t) { done.push_back(t); });
    eq.run();
    ASSERT_EQ(done.size(), 9u);
    EXPECT_EQ(done.back(), 600u); // waited for a slot
}

TEST(Dram, WritesConsumeSlots)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    for (int i = 0; i < 8; ++i)
        dram.write(i, 0);
    Tick done = 0;
    dram.read(99, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, 600u);
}

TEST(Dram, StatsCountReadsAndWrites)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    dram.read(1, 0, [](Tick) {});
    dram.write(2, 0);
    dram.write(3, 0);
    eq.run();
    EXPECT_EQ(dram.reads.value(), 1.0);
    EXPECT_EQ(dram.writes.value(), 2.0);
}

TEST(Dram, InServiceTracksOutstanding)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    dram.read(1, 0, [](Tick) {});
    EXPECT_EQ(dram.inService(), 1);
    eq.run();
    EXPECT_EQ(dram.inService(), 0);
}

TEST(Dram, QueueDelayMeasured)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root, 300, 1);
    dram.read(1, 0, [](Tick) {});
    dram.read(2, 0, [](Tick) {});
    eq.run();
    EXPECT_EQ(dram.queueDelay.count(), 2u);
    EXPECT_GT(dram.queueDelay.maxValue(), 0.0);
}

// ---------------------------------------------------------------------
// DDR-backend unit tests: row buffer, scheduling, refresh, faults,
// and the exact-sum latency partition.
// ---------------------------------------------------------------------

namespace
{

/** Single-channel geometry so ordering effects are observable. */
DdrBackend::Params
smallDdr(int banks = 2)
{
    DdrBackend::Params p;
    p.channels = 1;
    p.ranksPerChannel = 1;
    p.banksPerRank = banks;
    p.tREFI = 0; // refresh off unless a test turns it on
    return p;
}

} // namespace

TEST(Ddr, RowHitFasterThanClosedFasterThanConflict)
{
    EventQueue eq;
    stats::StatGroup root("root");
    DdrBackend::Params p = smallDdr();
    DdrBackend dram(eq, &root, p);
    // With 2 banks and 8 KiB rows (128 blocks), block 0 and block 1
    // share bank 0 row 0; block 512 is bank 0 row 2.
    Tick t_closed = 0, t_hit = 0, t_conflict = 0;
    dram.read(0, 0, [&](Tick t) { t_closed = t; });
    eq.run();
    dram.read(1, 1000, [&](Tick t) { t_hit = t; });
    eq.run();
    dram.read(512, 2000, [&](Tick t) { t_conflict = t; });
    eq.run();
    Cycles closed = t_closed;
    Cycles hit = t_hit - 1000;
    Cycles conflict = t_conflict - 2000;
    EXPECT_EQ(hit, p.tCAS + p.tBurst);
    EXPECT_EQ(closed, p.tRCD + p.tCAS + p.tBurst);
    EXPECT_EQ(conflict, p.tRP + p.tRCD + p.tCAS + p.tBurst);
    EXPECT_LT(hit, closed);
    EXPECT_LT(closed, conflict);
    EXPECT_EQ(dram.rowHits.value(), 1.0);
    EXPECT_EQ(dram.rowMisses.value(), 1.0);
    EXPECT_EQ(dram.rowConflicts.value(), 1.0);
}

TEST(Ddr, FrFcfsReordersRowHitsFcfsDoesNot)
{
    // One bank; X opens row 0, Y wants row 1, Z wants row 0 again.
    // FR-FCFS serves the younger row hit Z before Y; FCFS stays in
    // arrival order.
    auto run = [&](bool fcfs, std::vector<char> &order,
                   double &row_hits) {
        EventQueue eq;
        stats::StatGroup root("root");
        DdrBackend::Params p = smallDdr(1);
        p.fcfs = fcfs;
        DdrBackend dram(eq, &root, p);
        dram.read(0, 0, [&](Tick) { order.push_back('X'); });
        dram.read(128, 0, [&](Tick) { order.push_back('Y'); });
        dram.read(1, 0, [&](Tick) { order.push_back('Z'); });
        eq.run();
        row_hits = dram.rowHits.value();
    };
    std::vector<char> frfcfs_order, fcfs_order;
    double frfcfs_hits = 0.0, fcfs_hits = 0.0;
    run(false, frfcfs_order, frfcfs_hits);
    run(true, fcfs_order, fcfs_hits);
    EXPECT_EQ(frfcfs_order, (std::vector<char>{'X', 'Z', 'Y'}));
    EXPECT_EQ(fcfs_order, (std::vector<char>{'X', 'Y', 'Z'}));
    EXPECT_EQ(frfcfs_hits, 1.0);
    EXPECT_EQ(fcfs_hits, 0.0);
}

TEST(Ddr, ClosedPagePolicyNeverHits)
{
    EventQueue eq;
    stats::StatGroup root("root");
    DdrBackend::Params p = smallDdr();
    p.closedPage = true;
    DdrBackend dram(eq, &root, p);
    dram.read(0, 0, [](Tick) {});
    eq.run();
    dram.read(1, 1000, [](Tick) {});
    eq.run();
    EXPECT_EQ(dram.rowHits.value(), 0.0);
    EXPECT_EQ(dram.rowMisses.value(), 2.0);
}

TEST(Ddr, RefreshBlocksBanksAndCounts)
{
    DdrBackend::Params p = smallDdr(1);
    Tick no_refresh = 0;
    {
        EventQueue eq;
        stats::StatGroup root("root");
        DdrBackend dram(eq, &root, p);
        dram.read(0, 1100, [&](Tick t) { no_refresh = t; });
        eq.run();
    }
    p.tREFI = 1000;
    p.tRFC = 500;
    EventQueue eq;
    stats::StatGroup root("root");
    DdrBackend dram(eq, &root, p);
    Tick refreshed = 0;
    dram.read(0, 1100, [&](Tick t) { refreshed = t; });
    eq.run();
    // The tick-1000 refresh blocks the bank until 1500.
    EXPECT_GE(dram.refreshes.value(), 1.0);
    EXPECT_GT(refreshed, no_refresh);
    EXPECT_EQ(refreshed,
              1500 + p.tRCD + p.tCAS + p.tBurst);
}

TEST(Ddr, BoundedQueueBackpressuresBurst)
{
    EventQueue eq;
    stats::StatGroup root("root");
    DdrBackend::Params p = smallDdr(1);
    p.queueDepth = 2;
    DdrBackend dram(eq, &root, p);
    std::vector<Tick> times;
    for (int i = 0; i < 12; ++i)
        dram.read(1, 0, [&](Tick t) { times.push_back(t); });
    EXPECT_EQ(dram.inService(), 12); // accepted, spill included
    eq.run();
    ASSERT_EQ(times.size(), 12u);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i], times[i - 1]); // one bank serializes
    EXPECT_EQ(dram.inService(), 0);
    EXPECT_EQ(dram.queueDelay.count(), 12u);
}

TEST(Ddr, StuckDramBankAddsPenalty)
{
    fault::FaultConfig fc;
    fc.enabled = true;
    fc.dramStuckBanks = "0@0";
    fault::Injector injector(fc, 0);
    EventQueue eq;
    stats::StatGroup root("root");
    DdrBackend::Params p = smallDdr(1);
    DdrBackend dram(eq, &root, p, &injector);
    Tick done = 0;
    dram.read(0, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done,
              p.tRCD + p.tCAS + p.stuckBankPenalty + p.tBurst);
    EXPECT_EQ(dram.stuckBankAccesses.value(), 1.0);
}

TEST(Ddr, LatencyPartitionSumsExactly)
{
    EventQueue eq;
    stats::StatGroup root("root");
    DdrBackend::Params p = smallDdr();
    p.queueDepth = 3;
    DdrBackend dram(eq, &root, p);
    // Reads only, all issued at t=0, so each completion time equals
    // that request's end-to-end latency.
    double total = 0.0;
    int n = 20;
    for (int i = 0; i < n; ++i) {
        dram.read(static_cast<Addr>(i * 131), 0,
                  [&](Tick t) { total += static_cast<double>(t); });
    }
    eq.run();
    EXPECT_EQ(dram.queueLatency.count(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(dram.bankLatency.count(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(dram.busLatency.count(), static_cast<std::uint64_t>(n));
    EXPECT_DOUBLE_EQ(dram.queueLatency.sum() + dram.bankLatency.sum() +
                         dram.busLatency.sum(),
                     total);
    // queueDelay (the conformance-level stat) mirrors lat_queue.
    EXPECT_EQ(dram.queueDelay.count(), static_cast<std::uint64_t>(n));
}
