/**
 * @file
 * Unit tests for the DRAM model (300 cycles, 8 outstanding).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/dram.hh"
#include "sim/eventq.hh"
#include "sim/stats.hh"

using namespace tlsim;
using namespace tlsim::mem;

TEST(Dram, ReadLatency300)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    Tick done = 0;
    dram.read(0x10, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, 300u);
}

TEST(Dram, CustomLatency)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root, 100, 4);
    Tick done = 0;
    dram.read(0x10, 50, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, 150u);
}

TEST(Dram, EightOverlapOutstanding)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    std::vector<Tick> done;
    for (int i = 0; i < 8; ++i)
        dram.read(i, 0, [&](Tick t) { done.push_back(t); });
    eq.run();
    ASSERT_EQ(done.size(), 8u);
    for (Tick t : done)
        EXPECT_EQ(t, 300u); // all in parallel
}

TEST(Dram, NinthRequestQueues)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    std::vector<Tick> done;
    for (int i = 0; i < 9; ++i)
        dram.read(i, 0, [&](Tick t) { done.push_back(t); });
    eq.run();
    ASSERT_EQ(done.size(), 9u);
    EXPECT_EQ(done.back(), 600u); // waited for a slot
}

TEST(Dram, WritesConsumeSlots)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    for (int i = 0; i < 8; ++i)
        dram.write(i, 0);
    Tick done = 0;
    dram.read(99, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, 600u);
}

TEST(Dram, StatsCountReadsAndWrites)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    dram.read(1, 0, [](Tick) {});
    dram.write(2, 0);
    dram.write(3, 0);
    eq.run();
    EXPECT_EQ(dram.reads.value(), 1.0);
    EXPECT_EQ(dram.writes.value(), 2.0);
}

TEST(Dram, InServiceTracksOutstanding)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root);
    dram.read(1, 0, [](Tick) {});
    EXPECT_EQ(dram.inService(), 1);
    eq.run();
    EXPECT_EQ(dram.inService(), 0);
}

TEST(Dram, QueueDelayMeasured)
{
    EventQueue eq;
    stats::StatGroup root("root");
    Dram dram(eq, &root, 300, 1);
    dram.read(1, 0, [](Tick) {});
    dram.read(2, 0, [](Tick) {});
    eq.run();
    EXPECT_EQ(dram.queueDelay.count(), 2u);
    EXPECT_GT(dram.queueDelay.maxValue(), 0.0);
}
