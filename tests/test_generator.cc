/**
 * @file
 * Unit and statistical tests for the synthetic trace generator.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include <cmath>
#include <map>

#include "workload/generator.hh"

using namespace tlsim;
using namespace tlsim::workload;
using tlsim::cpu::TraceRecord;

namespace
{

BenchmarkProfile
simpleProfile()
{
    BenchmarkProfile p;
    p.name = "test";
    p.instrPerMem = 4.0;
    p.storeFrac = 0.25;
    p.hotBlocks = 100;
    p.hotFrac = 0.5;
    p.warmBlocks = 1000;
    p.warmFrac = 0.3;
    p.zipfS = 0.8;
    p.warmReuseFrac = 0.0;
    p.streamBlocks = 10000;
    p.iBlocks = 64;
    p.jumpProb = 0.2;
    p.instrPerIBlock = 16.0;
    p.seed = 5;
    return p;
}

struct Tally
{
    std::uint64_t instructions = 0;
    std::uint64_t data_ops = 0;
    std::uint64_t stores = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t hot = 0, warm = 0, stream = 0, churn = 0;
    std::uint64_t deps = 0;
};

Tally
runGenerator(TraceGenerator &gen, int records)
{
    Tally tally;
    for (int i = 0; i < records; ++i) {
        TraceRecord rec = gen.next();
        tally.instructions += rec.gap;
        if (rec.isIFetch) {
            ++tally.ifetches;
            continue;
        }
        ++tally.instructions;
        ++tally.data_ops;
        if (rec.type == mem::AccessType::Store)
            ++tally.stores;
        if (rec.dependsOnPrev)
            ++tally.deps;
        if (rec.blockAddr >= TraceGenerator::churnBase)
            ++tally.churn;
        else if (rec.blockAddr >= TraceGenerator::streamBase)
            ++tally.stream;
        else if (rec.blockAddr >= TraceGenerator::warmBase)
            ++tally.warm;
        else
            ++tally.hot;
    }
    return tally;
}

} // namespace

TEST(Generator, Deterministic)
{
    auto profile = simpleProfile();
    TraceGenerator a(profile, 3), b(profile, 3);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.blockAddr, rb.blockAddr);
        EXPECT_EQ(ra.gap, rb.gap);
        EXPECT_EQ(ra.isIFetch, rb.isIFetch);
    }
}

TEST(Generator, DifferentRunSeedsDiffer)
{
    auto profile = simpleProfile();
    TraceGenerator a(profile, 1), b(profile, 2);
    int diff = 0;
    for (int i = 0; i < 200; ++i)
        diff += (a.next().blockAddr != b.next().blockAddr) ? 1 : 0;
    EXPECT_GT(diff, 50);
}

TEST(Generator, InstructionsPerMemOp)
{
    auto profile = simpleProfile();
    TraceGenerator gen(profile);
    Tally tally = runGenerator(gen, 200000);
    double ratio = static_cast<double>(tally.instructions) /
                   static_cast<double>(tally.data_ops);
    EXPECT_NEAR(ratio, profile.instrPerMem, 0.3);
}

TEST(Generator, StoreFraction)
{
    auto profile = simpleProfile();
    TraceGenerator gen(profile);
    Tally tally = runGenerator(gen, 100000);
    double frac = static_cast<double>(tally.stores) /
                  static_cast<double>(tally.data_ops);
    EXPECT_NEAR(frac, profile.storeFrac, 0.02);
}

TEST(Generator, RegionFractions)
{
    auto profile = simpleProfile();
    TraceGenerator gen(profile);
    Tally tally = runGenerator(gen, 200000);
    double n = static_cast<double>(tally.data_ops);
    EXPECT_NEAR(tally.hot / n, profile.hotFrac, 0.02);
    EXPECT_NEAR(tally.warm / n, profile.warmFrac, 0.02);
    EXPECT_NEAR(tally.stream / n, profile.streamFrac(), 0.02);
}

TEST(Generator, IFetchCadence)
{
    auto profile = simpleProfile();
    TraceGenerator gen(profile);
    Tally tally = runGenerator(gen, 200000);
    double per_ifetch = static_cast<double>(tally.instructions) /
                        static_cast<double>(tally.ifetches);
    EXPECT_NEAR(per_ifetch, profile.instrPerIBlock, 2.0);
}

TEST(Generator, AddressesWithinRegions)
{
    // The tag scramble perturbs bits 16..23 but must keep every
    // address inside its (2^24-spaced) region.
    const Addr slack = Addr(1) << 24;
    auto profile = simpleProfile();
    TraceGenerator gen(profile);
    for (int i = 0; i < 50000; ++i) {
        TraceRecord rec = gen.next();
        if (rec.isIFetch) {
            EXPECT_GE(rec.blockAddr, TraceGenerator::instrBase);
            EXPECT_LT(rec.blockAddr,
                      TraceGenerator::instrBase + slack);
        } else if (rec.blockAddr < TraceGenerator::warmBase) {
            EXPECT_GE(rec.blockAddr, TraceGenerator::hotBase);
            EXPECT_LT(rec.blockAddr,
                      TraceGenerator::hotBase + slack);
        }
    }
}

TEST(Generator, TagScrambleInjectiveAndSetPreserving)
{
    std::set<Addr> images;
    for (Addr block = 0; block < 20000; ++block) {
        Addr scrambled = TraceGenerator::tagScramble(block);
        EXPECT_EQ(scrambled & 0xFFFF, block & 0xFFFF);
        EXPECT_TRUE(images.insert(scrambled).second);
    }
}

TEST(Generator, TagScrambleVariesTagBits)
{
    std::set<Addr> tags;
    for (Addr block = 0; block < 256; ++block) {
        tags.insert((TraceGenerator::tagScramble(block) >> 16) & 0x3F);
    }
    // Consecutive blocks spread over many 6-bit partial tags.
    EXPECT_GT(tags.size(), 30u);
}

TEST(Generator, StreamIsSequentialInSetBits)
{
    // Streams walk consecutive blocks; the tag scramble perturbs
    // bits 16..23 but the set-index bits advance sequentially.
    auto profile = simpleProfile();
    profile.hotFrac = 0.0;
    profile.warmFrac = 0.0; // everything streams
    TraceGenerator gen(profile);
    Addr prev = 0;
    bool first = true;
    for (int i = 0; i < 1000; ++i) {
        TraceRecord rec = gen.next();
        if (rec.isIFetch)
            continue;
        if (!first) {
            EXPECT_EQ(rec.blockAddr & 0xFFFF,
                      (prev + 1) & 0xFFFF);
        }
        prev = rec.blockAddr;
        first = false;
    }
}

TEST(Generator, StreamWrapsAround)
{
    auto profile = simpleProfile();
    profile.hotFrac = 0.0;
    profile.warmFrac = 0.0;
    profile.streamBlocks = 64;
    TraceGenerator gen(profile);
    std::set<Addr> seen;
    for (int i = 0; i < 1000; ++i) {
        TraceRecord rec = gen.next();
        if (!rec.isIFetch)
            seen.insert(rec.blockAddr);
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(Generator, ChurnProducesFreshBlocks)
{
    auto profile = simpleProfile();
    profile.churnFrac = 0.05;
    TraceGenerator gen(profile);
    Tally tally = runGenerator(gen, 100000);
    EXPECT_GT(tally.churn, 0u);
    double frac = static_cast<double>(tally.churn) /
                  static_cast<double>(tally.data_ops);
    EXPECT_NEAR(frac, 0.05, 0.01);
}

TEST(Generator, DependenceFraction)
{
    auto profile = simpleProfile();
    profile.depFrac = 0.4;
    TraceGenerator gen(profile);
    Tally tally = runGenerator(gen, 100000);
    double frac = static_cast<double>(tally.deps) /
                  static_cast<double>(tally.data_ops);
    EXPECT_NEAR(frac, 0.4, 0.02);
}

TEST(Generator, WarmReuseRepeatsRecentBlocks)
{
    auto profile = simpleProfile();
    profile.hotFrac = 0.0;
    profile.warmFrac = 1.0;
    profile.warmReuseFrac = 0.5;
    profile.reuseWindow = 16;
    profile.warmBlocks = 1u << 20; // huge: fresh draws rarely repeat
    profile.zipfS = 0.0;
    TraceGenerator gen(profile);
    std::map<Addr, int> counts;
    int repeats = 0, ops = 0;
    for (int i = 0; i < 20000; ++i) {
        TraceRecord rec = gen.next();
        if (rec.isIFetch)
            continue;
        ++ops;
        repeats += (counts[rec.blockAddr]++ > 0) ? 1 : 0;
    }
    // Half the references re-touch recent blocks.
    EXPECT_GT(static_cast<double>(repeats) / ops, 0.3);
}

TEST(Generator, InvalidFractionsPanic)
{
    auto profile = simpleProfile();
    profile.hotFrac = 0.8;
    profile.warmFrac = 0.5;
    EXPECT_THROW(TraceGenerator gen(profile), PanicError);
}
