/**
 * @file
 * Unit tests for the CACTI-lite SRAM bank model. The central check:
 * the paper's Table 2 bank access times (64 KB -> 3 cycles, 512 KB ->
 * 8, 1 MB -> 10) fall out of the calibrated model.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "cacti/srambank.hh"
#include "phys/technology.hh"

using namespace tlsim;
using namespace tlsim::cacti;
using tlsim::phys::tech45;

TEST(SramBank, Table2AccessCycles)
{
    SramBankModel dnuca_bank(tech45(), 64 * 1024, 2, 64);
    SramBankModel tlc_bank(tech45(), 512 * 1024, 4, 64);
    SramBankModel opt_bank(tech45(), 1024 * 1024, 4, 64);
    EXPECT_EQ(dnuca_bank.accessCycles(), 3);
    EXPECT_EQ(tlc_bank.accessCycles(), 8);
    EXPECT_EQ(opt_bank.accessCycles(), 10);
}

TEST(SramBank, AccessTimeMonotoneInCapacity)
{
    double prev = 0.0;
    for (std::uint64_t kb : {16, 64, 256, 1024, 4096}) {
        SramBankModel bank(tech45(), kb * 1024, 4, 64);
        EXPECT_GT(bank.accessTime(), prev);
        prev = bank.accessTime();
    }
}

TEST(SramBank, DnucaStorageAreaNearTable7)
{
    // 256 x 64 KB banks: paper Table 7 says 92 mm^2.
    SramBankModel bank(tech45(), 64 * 1024, 2, 64);
    double total_mm2 = 256.0 * bank.area() / 1e-6;
    EXPECT_GT(total_mm2, 75.0);
    EXPECT_LT(total_mm2, 115.0);
}

TEST(SramBank, TlcStorageAreaNearTable7)
{
    // 32 x 512 KB banks: paper Table 7 says 77 mm^2.
    SramBankModel bank(tech45(), 512 * 1024, 4, 64);
    double total_mm2 = 32.0 * bank.area() / 1e-6;
    EXPECT_GT(total_mm2, 63.0);
    EXPECT_LT(total_mm2, 95.0);
}

TEST(SramBank, LargerBanksAreDenser)
{
    // Periphery amortization: the key to TLC's storage-area saving.
    SramBankModel small(tech45(), 64 * 1024, 2, 64);
    SramBankModel large(tech45(), 512 * 1024, 4, 64);
    double small_density = small.area() / (64.0 * 1024);
    double large_density = large.area() / (512.0 * 1024);
    EXPECT_LT(large_density, small_density);
}

TEST(SramBank, ReadEnergyMonotone)
{
    SramBankModel a(tech45(), 64 * 1024, 2, 64);
    SramBankModel b(tech45(), 1024 * 1024, 4, 64);
    EXPECT_LT(a.readEnergy(), b.readEnergy());
    // Tens to hundreds of pJ.
    EXPECT_GT(a.readEnergy(), 1e-12);
    EXPECT_LT(b.readEnergy(), 1e-9);
}

TEST(SramBank, TransistorCountDominatedByCells)
{
    SramBankModel bank(tech45(), 64 * 1024, 2, 64);
    long bits = 64 * 1024 * 8;
    EXPECT_GT(bank.transistorCount(), 6L * bits);
    EXPECT_LT(bank.transistorCount(), 8L * bits);
}

TEST(SramBank, TinyBankPanics)
{
    EXPECT_THROW(SramBankModel(tech45(), 512, 2, 64),
                 tlsim::PanicError);
}

/** Property sweep: access cycles weakly monotone over capacities. */
class BankCapacitySweep
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(BankCapacitySweep, CyclesAtLeastThree)
{
    SramBankModel bank(tech45(), GetParam(), 4, 64);
    EXPECT_GE(bank.accessCycles(), 2);
    EXPECT_LE(bank.accessCycles(), 40);
    EXPECT_GT(bank.area(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BankCapacitySweep,
                         ::testing::Values(16 * 1024, 64 * 1024,
                                           128 * 1024, 512 * 1024,
                                           1024 * 1024, 4096 * 1024));
