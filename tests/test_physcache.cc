/**
 * @file
 * Tests for the process-wide physics memo cache: memoized values must
 * be bit-identical to direct computation, hits must actually hit, and
 * concurrent lookups must be safe.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/physcache.hh"
#include "phys/pulse.hh"
#include "phys/rcwire.hh"
#include "phys/technology.hh"

using namespace tlsim::phys;

namespace
{

class PhysCacheTest : public ::testing::Test
{
  protected:
    // Each test starts memo-cold; the cache is process-wide and other
    // tests in this binary would otherwise leak entries in.
    void SetUp() override { PhysCache::instance().clear(); }
};

} // namespace

TEST_F(PhysCacheTest, ExtractMatchesDirectSolverBitExactly)
{
    const Technology &tech = tech45();
    for (const auto &spec : paperTable1Lines()) {
        FieldSolver solver(tech);
        LineParams direct = solver.extract(spec.geometry);
        LineParams memoized =
            PhysCache::instance().extract(tech, spec.geometry);
        // Bit-identical, not approximately equal: the memo sits on
        // the ResultCache key path, where any drift would silently
        // invalidate reproduction runs.
        EXPECT_EQ(direct.resistance, memoized.resistance);
        EXPECT_EQ(direct.inductance, memoized.inductance);
        EXPECT_EQ(direct.capacitance, memoized.capacitance);
        // And the hit must return the same bits again.
        LineParams hit =
            PhysCache::instance().extract(tech, spec.geometry);
        EXPECT_EQ(memoized.resistance, hit.resistance);
        EXPECT_EQ(memoized.inductance, hit.inductance);
        EXPECT_EQ(memoized.capacitance, hit.capacitance);
    }
}

TEST_F(PhysCacheTest, PulseMatchesDirectSimulatorBitExactly)
{
    const Technology &tech = tech45();
    const auto &spec = paperTable1Lines().front();

    PulseSimulator sim(tech);
    PulseResult direct = sim.simulate(spec.geometry, spec.length);
    PulseResult memoized =
        PhysCache::instance().pulse(tech, spec.geometry, spec.length);
    EXPECT_EQ(direct.delay, memoized.delay);
    EXPECT_EQ(direct.peakAmplitude, memoized.peakAmplitude);
    EXPECT_EQ(direct.pulseWidth, memoized.pulseWidth);

    PulseResult hit =
        PhysCache::instance().pulse(tech, spec.geometry, spec.length);
    EXPECT_EQ(memoized.delay, hit.delay);
    EXPECT_EQ(memoized.peakAmplitude, hit.peakAmplitude);
    EXPECT_EQ(memoized.pulseWidth, hit.pulseWidth);
}

TEST_F(PhysCacheTest, RcDelayMatchesDirectModelBitExactly)
{
    const Technology &tech = tech45();
    const WireGeometry geom = conventionalGlobalWire();

    RcWireModel rc(tech, geom);
    double direct = rc.delay(0.004);
    double memoized =
        PhysCache::instance().rcDelay(tech, geom, 0.004);
    EXPECT_EQ(direct, memoized);
    EXPECT_EQ(memoized,
              PhysCache::instance().rcDelay(tech, geom, 0.004));
}

TEST_F(PhysCacheTest, CountsHitsAndMisses)
{
    auto &cache = PhysCache::instance();
    const Technology &tech = tech45();
    const auto &lines = paperTable1Lines();

    std::uint64_t misses0 = cache.misses();
    std::uint64_t hits0 = cache.hits();

    for (const auto &spec : lines)
        cache.extract(tech, spec.geometry);
    EXPECT_EQ(cache.misses() - misses0, lines.size());
    EXPECT_EQ(cache.hits() - hits0, 0u);

    for (const auto &spec : lines)
        cache.extract(tech, spec.geometry);
    EXPECT_EQ(cache.misses() - misses0, lines.size());
    EXPECT_EQ(cache.hits() - hits0, lines.size());
}

TEST_F(PhysCacheTest, KeySeparatesGeometryLengthAndTechnology)
{
    auto &cache = PhysCache::instance();
    const Technology &tech = tech45();
    const auto &spec = paperTable1Lines().front();

    std::uint64_t misses0 = cache.misses();
    cache.pulse(tech, spec.geometry, spec.length);
    // Different length: a distinct entry, not a false hit.
    cache.pulse(tech, spec.geometry, spec.length * 2.0);
    // Different geometry: distinct again.
    WireGeometry wider = spec.geometry;
    wider.width *= 2.0;
    cache.pulse(tech, wider, spec.length);
    // Different technology: distinct again.
    Technology scaled = tech;
    scaled.vdd *= 0.9;
    cache.pulse(scaled, spec.geometry, spec.length);
    EXPECT_EQ(cache.misses() - misses0, 4u);
}

TEST_F(PhysCacheTest, ClearForgetsEverything)
{
    auto &cache = PhysCache::instance();
    const Technology &tech = tech45();
    const auto &spec = paperTable1Lines().front();

    cache.pulse(tech, spec.geometry, spec.length);
    cache.clear();
    std::uint64_t misses0 = cache.misses();
    cache.pulse(tech, spec.geometry, spec.length);
    EXPECT_EQ(cache.misses() - misses0, 1u);
}

TEST_F(PhysCacheTest, ConcurrentLookupsAgree)
{
    auto &cache = PhysCache::instance();
    const Technology &tech = tech45();
    const auto &lines = paperTable1Lines();

    // Reference values computed single-threaded.
    std::vector<double> expected;
    for (const auto &spec : lines)
        expected.push_back(
            cache.pulse(tech, spec.geometry, spec.length).delay);
    cache.clear();

    // Hammer the same entries from several threads while the table is
    // cold, so insertions race with lookups. Every thread must see the
    // same bits (first insert wins; duplicate computes are identical).
    constexpr int numThreads = 8;
    constexpr int rounds = 50;
    std::vector<std::vector<double>> got(numThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < numThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int r = 0; r < rounds; ++r) {
                for (const auto &spec : lines) {
                    got[static_cast<std::size_t>(t)].push_back(
                        cache.pulse(tech, spec.geometry, spec.length)
                            .delay);
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int t = 0; t < numThreads; ++t) {
        ASSERT_EQ(got[static_cast<std::size_t>(t)].size(),
                  rounds * lines.size());
        for (int r = 0; r < rounds; ++r) {
            for (std::size_t i = 0; i < lines.size(); ++i) {
                EXPECT_EQ(got[static_cast<std::size_t>(t)]
                             [static_cast<std::size_t>(r) * lines.size() +
                              i],
                          expected[i]);
            }
        }
    }
}
