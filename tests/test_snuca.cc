/**
 * @file
 * Unit tests for the SNUCA2 baseline design.
 */

#include <gtest/gtest.h>

#include "nuca/snuca.hh"
#include "mem/dram.hh"
#include "phys/technology.hh"

using namespace tlsim;
using namespace tlsim::nuca;
using tlsim::mem::AccessType;

namespace
{

struct Fixture
{
    Fixture()
        : root("root"), dram(eq, &root),
          cache(eq, &root, dram, phys::tech45())
    {}

    EventQueue eq;
    stats::StatGroup root;
    mem::Dram dram;
    SnucaCache cache;
};

} // namespace

TEST(Snuca, LatencyRangeNearTable2)
{
    Fixture f;
    auto [lo, hi] = f.cache.latencyRange();
    // Paper Table 2: 9-32 cycles (our floorplan computes 8-32).
    EXPECT_GE(lo, 8u);
    EXPECT_LE(lo, 10u);
    EXPECT_EQ(hi, 32u);
}

TEST(Snuca, BankAccessEightCycles)
{
    Fixture f;
    EXPECT_EQ(f.cache.bankAccessCycles(), 8);
}

TEST(Snuca, MissGoesToMemoryThenHits)
{
    Fixture f;
    Tick first = 0;
    f.cache.access(0x40, AccessType::Load, 0,
                   [&](Tick t) { first = t; });
    f.eq.run();
    EXPECT_GT(first, 300u); // DRAM latency dominates
    EXPECT_EQ(f.cache.misses.value(), 1.0);

    Tick second = 0;
    // Wait out the fill's bank occupancy before re-accessing.
    Tick issue2 = first + 100;
    f.cache.access(0x40, AccessType::Load, issue2,
                   [&](Tick t) { second = t; });
    f.eq.run();
    EXPECT_EQ(f.cache.hits.value(), 1.0);
    Tick latency = second - issue2;
    EXPECT_EQ(latency,
              f.cache.uncontendedLatency(0x40 & 31));
}

TEST(Snuca, HitLatencyIsUncontendedWhenIdle)
{
    Fixture f;
    f.cache.accessFunctional(0x777, AccessType::Load);
    Tick done = 0;
    f.cache.access(0x777, AccessType::Load, 1000,
                   [&](Tick t) { done = t; });
    f.eq.run();
    EXPECT_EQ(done - 1000, f.cache.uncontendedLatency(0x777 & 31));
    EXPECT_EQ(f.cache.predictableLookups.value(), 1.0);
}

TEST(Snuca, StoreCompletesImmediately)
{
    Fixture f;
    Tick done = MaxTick;
    f.cache.access(0x99, AccessType::Store, 5,
                   [&](Tick t) { done = t; });
    EXPECT_EQ(done, 5u);
    f.eq.run();
    // The write is installed.
    Tick hit = 0;
    f.cache.access(0x99, AccessType::Load, 2000,
                   [&](Tick t) { hit = t; });
    f.eq.run();
    EXPECT_EQ(f.cache.hits.value(), 1.0);
}

TEST(Snuca, BanksAccessedAlwaysOne)
{
    Fixture f;
    f.cache.accessFunctional(0x1, AccessType::Load);
    f.cache.access(0x1, AccessType::Load, 0, [](Tick) {});
    f.eq.run();
    EXPECT_DOUBLE_EQ(f.cache.banksAccessed.mean(), 1.0);
}

TEST(Snuca, DirtyL2EvictionWritesToMemory)
{
    Fixture f;
    // Fill one set (4 ways) of one bank with dirty blocks, then push
    // a fifth: 32 banks x 2048 sets -> same (bank,set) stride is
    // 32 * 2048 = 65536.
    Addr base = 0x40;
    for (int i = 0; i < 5; ++i) {
        f.cache.access(base + 65536u * i, AccessType::Store,
                       i * 2000, [](Tick) {});
        f.eq.run();
    }
    EXPECT_EQ(f.cache.writebacksToMemory.value(), 1.0);
    EXPECT_EQ(f.dram.writes.value(), 1.0);
}

TEST(Snuca, UtilizationPositiveUnderLoad)
{
    Fixture f;
    for (Addr a = 0; a < 50; ++a)
        f.cache.access(a, AccessType::Load, a * 3, [](Tick) {});
    f.eq.run();
    f.cache.syncStats();
    EXPECT_GT(f.cache.linkBusyCycles.value(), 0.0);
    EXPECT_GT(f.cache.networkEnergy.value(), 0.0);
}

TEST(Snuca, FunctionalMatchesTimedPlacement)
{
    Fixture f;
    for (Addr a = 100; a < 120; ++a)
        f.cache.accessFunctional(a, AccessType::Load);
    for (Addr a = 100; a < 120; ++a) {
        f.cache.access(a, AccessType::Load, f.eq.now() + 1000,
                       [](Tick) {});
        f.eq.run();
    }
    EXPECT_EQ(f.cache.misses.value(), 0.0);
    EXPECT_EQ(f.cache.hits.value(), 20.0);
}
