/**
 * @file
 * Unit tests for the transmission-line signalling scheme models.
 */

#include <gtest/gtest.h>

#include "phys/drivers.hh"
#include "phys/technology.hh"

using namespace tlsim::phys;

namespace
{

TransmissionLine
line()
{
    return TransmissionLine(tech45(), 1.1e-2);
}

} // namespace

TEST(Drivers, ThreeSchemesModeled)
{
    EXPECT_EQ(allDriverKinds().size(), 3u);
}

TEST(Drivers, VoltageModeHasNoStaticPower)
{
    auto profile = evaluateDriver(tech45(), line(),
                                  DriverKind::VoltageMode);
    EXPECT_EQ(profile.staticPower, 0.0);
    EXPECT_EQ(profile.wiresPerSignal, 1);
    EXPECT_DOUBLE_EQ(profile.noiseMargin, 1.0);
}

TEST(Drivers, CurrentModeTradesStaticForDynamic)
{
    auto voltage = evaluateDriver(tech45(), line(),
                                  DriverKind::VoltageMode);
    auto current = evaluateDriver(tech45(), line(),
                                  DriverKind::CurrentMode);
    EXPECT_LT(current.dynamicEnergyPerBit, voltage.dynamicEnergyPerBit);
    EXPECT_GT(current.staticPower, 0.0);
    EXPECT_GT(current.noiseMargin, voltage.noiseMargin);
}

TEST(Drivers, DifferentialDoublesWires)
{
    auto diff = evaluateDriver(tech45(), line(),
                               DriverKind::DifferentialCarrier);
    EXPECT_EQ(diff.wiresPerSignal, 2);
    EXPECT_GT(diff.noiseMargin, 2.0);
    EXPECT_GT(diff.transistors,
              2 * TransmissionLine::transistorsPerLine());
}

TEST(Drivers, VoltageModeWinsAtLowUtilization)
{
    // The paper's argument: with <2% link utilization, schemes with
    // standing current burn more total power than voltage mode.
    const auto &tech = tech45();
    auto tl = line();
    const double util = 0.01;
    auto total = [&](DriverKind kind) {
        auto p = evaluateDriver(tech, tl, kind);
        return p.staticPower + util * tech.clockFreq *
                                   tech.activityFactor *
                                   p.dynamicEnergyPerBit;
    };
    EXPECT_LT(total(DriverKind::VoltageMode),
              total(DriverKind::CurrentMode));
    EXPECT_LT(total(DriverKind::VoltageMode),
              total(DriverKind::DifferentialCarrier));
}

TEST(Drivers, CurrentModeWinsAtHighUtilization)
{
    // Conversely, a saturated link would favour current mode's lower
    // per-bit energy.
    const auto &tech = tech45();
    auto tl = line();
    const double util = 1.0;
    auto dynamic_total = [&](DriverKind kind) {
        auto p = evaluateDriver(tech, tl, kind);
        return util * tech.clockFreq * tech.activityFactor *
               p.dynamicEnergyPerBit;
    };
    EXPECT_LT(dynamic_total(DriverKind::CurrentMode),
              dynamic_total(DriverKind::VoltageMode));
}

TEST(Drivers, EnergiesInPicojouleRange)
{
    for (DriverKind kind : allDriverKinds()) {
        auto p = evaluateDriver(tech45(), line(), kind);
        EXPECT_GT(p.dynamicEnergyPerBit, 1e-14) << p.name;
        EXPECT_LT(p.dynamicEnergyPerBit, 1e-11) << p.name;
    }
}
