/**
 * @file
 * Unit tests for the text table formatter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/table.hh"

using namespace tlsim;

TEST(TextTable, PrintsHeaderAndRows)
{
    TextTable table("My Table");
    table.setHeader({"A", "B"});
    table.addRow({"1", "2"});
    table.addRow({"333", "4"});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("My Table"), std::string::npos);
    EXPECT_NE(text.find("A"), std::string::npos);
    EXPECT_NE(text.find("333"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable table;
    table.setHeader({"col", "x"});
    table.addRow({"longvalue", "1"});
    std::ostringstream os;
    table.print(os);
    // The second column of both lines starts at the same offset.
    std::string text = os.str();
    auto first_line_end = text.find('\n');
    std::string header = text.substr(0, first_line_end);
    EXPECT_GE(header.size(), std::string("longvalue").size());
}

TEST(TextTable, CsvOutput)
{
    TextTable table;
    table.setHeader({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(0.057, 3), "0.057");
}

TEST(TextTable, EmptyTablePrintsNothingFatal)
{
    TextTable table;
    std::ostringstream os;
    table.print(os);
    table.printCsv(os);
    SUCCEED();
}

TEST(TextTable, NumRows)
{
    TextTable table;
    EXPECT_EQ(table.numRows(), 0u);
    table.addRow({"x"});
    EXPECT_EQ(table.numRows(), 1u);
}

TEST(TextTable, RaggedRowsHandled)
{
    TextTable table;
    table.setHeader({"a"});
    table.addRow({"1", "2", "3"});
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("3"), std::string::npos);
}
