/**
 * @file
 * Tests for the Table 7 / Table 8 physical-design roll-ups.
 */

#include <gtest/gtest.h>

#include "harness/papermodels.hh"
#include "phys/technology.hh"

using namespace tlsim;
using namespace tlsim::harness;
using tlsim::phys::tech45;

TEST(PaperModels, DnucaAreaNearTable7)
{
    AreaBreakdown area = dnucaArea(tech45());
    EXPECT_NEAR(area.storage / 1e-6, 92.0, 8.0);
    EXPECT_NEAR(area.channel / 1e-6, 17.0, 5.0);
    EXPECT_NEAR(area.controller / 1e-6, 1.1, 0.5);
    EXPECT_NEAR(area.total() / 1e-6, 110.0, 12.0);
}

TEST(PaperModels, TlcAreaNearTable7)
{
    AreaBreakdown area = tlcArea(tech45());
    EXPECT_NEAR(area.storage / 1e-6, 77.0, 7.0);
    EXPECT_NEAR(area.channel / 1e-6, 3.1, 1.5);
    EXPECT_NEAR(area.controller / 1e-6, 10.0, 2.0);
    EXPECT_NEAR(area.total() / 1e-6, 91.0, 9.0);
}

TEST(PaperModels, TlcSavesAboutEighteenPercent)
{
    AreaBreakdown dnuca = dnucaArea(tech45());
    AreaBreakdown tlc = tlcArea(tech45());
    double saving = 1.0 - tlc.total() / dnuca.total();
    EXPECT_NEAR(saving, 0.18, 0.05);
}

TEST(PaperModels, StorageDominatesBothDesigns)
{
    for (const auto &area : {dnucaArea(tech45()), tlcArea(tech45())}) {
        EXPECT_GT(area.storage, 0.5 * area.total());
    }
}

TEST(PaperModels, TlcChannelFarSmallerThanDnuca)
{
    EXPECT_LT(tlcArea(tech45()).channel,
              0.3 * dnucaArea(tech45()).channel);
}

TEST(PaperModels, TransistorTotalsNearTable8)
{
    CircuitTotals dnuca = dnucaNetworkCircuit(tech45());
    CircuitTotals tlc = tlcNetworkCircuit(tech45());
    // Paper: 1.2e7 vs 1.9e5 transistors.
    EXPECT_NEAR(static_cast<double>(dnuca.transistors), 1.2e7, 0.5e7);
    EXPECT_NEAR(static_cast<double>(tlc.transistors), 1.9e5, 0.5e5);
    EXPECT_GT(dnuca.transistors, 50 * tlc.transistors);
}

TEST(PaperModels, GateWidthReductionOrderOfMagnitude)
{
    CircuitTotals dnuca = dnucaNetworkCircuit(tech45());
    CircuitTotals tlc = tlcNetworkCircuit(tech45());
    EXPECT_GT(dnuca.gateWidthLambda, 10.0 * tlc.gateWidthLambda);
}
