/**
 * @file
 * Reproduces paper Table 9: banks accessed per request and dynamic
 * power dissipated in the L2 communication network, for DNUCA and the
 * base TLC, across the 12 benchmarks.
 *
 * Thin wrapper over the sweep runner: equivalent to
 * `tlsim_repro --filter table9`, and accepts the same options.
 */

#include "repro/reprocli.hh"

int
main(int argc, char **argv)
{
    return tlsim::repro::experimentMain("table9", argc, argv);
}
