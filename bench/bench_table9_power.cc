/**
 * @file
 * Reproduces paper Table 9: banks accessed per request and dynamic
 * power dissipated in the L2 communication network, for DNUCA and the
 * base TLC, across the 12 benchmarks.
 */

#include <iostream>

#include "benchcommon.hh"
#include "paperdata.hh"
#include "sim/table.hh"

using namespace tlsim;
using harness::DesignKind;

int
main(int argc, char **argv)
{
    benchcommon::initObservability(argc, argv);
    TextTable table("Table 9: Dynamic Components (measured (paper))");
    table.setHeader({"Bench", "DNUCA banks/req", "TLC banks/req",
                     "DNUCA net power [mW]", "TLC net power [mW]"});

    double dnuca_sum = 0.0, tlc_sum = 0.0;
    for (const auto &row : paperdata::table9) {
        const auto &tlc = benchcommon::cachedRun(DesignKind::TlcBase,
                                                 row.bench);
        const auto &dnuca = benchcommon::cachedRun(DesignKind::Dnuca,
                                                   row.bench);
        table.addRow({
            row.bench,
            TextTable::num(dnuca.banksPerRequest, 1) + " (" +
                TextTable::num(row.dnucaBanksPerRequest, 1) + ")",
            TextTable::num(tlc.banksPerRequest, 1) + " (" +
                TextTable::num(row.tlcBanksPerRequest, 1) + ")",
            TextTable::num(dnuca.networkPowerMw, 0) + " (" +
                TextTable::num(row.dnucaNetworkPowerMw, 0) + ")",
            TextTable::num(tlc.networkPowerMw, 0) + " (" +
                TextTable::num(row.tlcNetworkPowerMw, 0) + ")",
        });
        dnuca_sum += dnuca.networkPowerMw;
        tlc_sum += tlc.networkPowerMw;
    }
    table.print(std::cout);

    double reduction = 100.0 * (1.0 - tlc_sum / dnuca_sum);
    std::cout << "\nAverage TLC network dynamic power reduction: "
              << TextTable::num(reduction, 0) << "% (paper: 61%)\n";
    return 0;
}
