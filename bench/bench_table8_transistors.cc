/**
 * @file
 * Reproduces paper Table 8: transistor count and total gate width of
 * the two communication networks — DNUCA's switched mesh (switches,
 * repeaters, latches) vs TLC's transmission-line drivers/receivers.
 */

#include <iostream>

#include "paperdata.hh"
#include "harness/papermodels.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;

namespace
{

std::string
sci(double v)
{
    std::ostringstream os;
    os.precision(2);
    os << std::scientific << v;
    return os.str();
}

} // namespace

int
main()
{
    const auto &tech = phys::tech45();
    auto dnuca = harness::dnucaNetworkCircuit(tech);
    auto tlc = harness::tlcNetworkCircuit(tech);

    TextTable table("Table 8: Cache Communication Network "
                    "Characteristics (measured (paper))");
    table.setHeader({"Design", "Total Transistors",
                     "Total Gate Width [lambda]"});
    table.addRow({"DNUCA",
                  sci(static_cast<double>(dnuca.transistors)) + " (" +
                      sci(paperdata::table8[0].transistors) + ")",
                  sci(dnuca.gateWidthLambda) + " (" +
                      sci(paperdata::table8[0].gateWidthLambda) + ")"});
    table.addRow({"TLC",
                  sci(static_cast<double>(tlc.transistors)) + " (" +
                      sci(paperdata::table8[1].transistors) + ")",
                  sci(tlc.gateWidthLambda) + " (" +
                      sci(paperdata::table8[1].gateWidthLambda) + ")"});
    table.print(std::cout);

    std::cout << "\nTransistor reduction: "
              << TextTable::num(static_cast<double>(dnuca.transistors) /
                                    static_cast<double>(
                                        tlc.transistors),
                                0)
              << "x (paper: >50x); gate width reduction: "
              << TextTable::num(dnuca.gateWidthLambda /
                                    tlc.gateWidthLambda,
                                0)
              << "x (paper: >20x)\n";
    return 0;
}
