/**
 * @file
 * Reproduces paper Table 7: consumed substrate area of the DNUCA and
 * base TLC designs (storage / channel / controller / total), from the
 * CACTI-lite bank model, the RC-wire repeater model, the switch
 * model, and the TLC floorplan.
 */

#include <iostream>

#include "paperdata.hh"
#include "harness/papermodels.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;
using harness::AreaBreakdown;

int
main()
{
    const auto &tech = phys::tech45();
    AreaBreakdown dnuca = harness::dnucaArea(tech);
    AreaBreakdown tlc = harness::tlcArea(tech);

    TextTable table("Table 7: Consumed Substrate Area [mm^2] "
                    "(measured (paper))");
    table.setHeader({"Design", "Storage", "Channel", "Controller",
                     "Total"});

    auto row = [&](const char *name, const AreaBreakdown &area) {
        const paperdata::Table7Row *paper = nullptr;
        for (const auto &r : paperdata::table7) {
            if (std::string(name) == r.design)
                paper = &r;
        }
        auto cell = [&](double model_m2, double paper_mm2) {
            return TextTable::num(model_m2 / 1e-6, 1) + " (" +
                   TextTable::num(paper_mm2, 1) + ")";
        };
        table.addRow({name, cell(area.storage, paper->storage),
                      cell(area.channel, paper->channel),
                      cell(area.controller, paper->controller),
                      cell(area.total(), paper->total)});
    };
    row("DNUCA", dnuca);
    row("TLC", tlc);
    table.print(std::cout);

    double saving = 100.0 * (1.0 - tlc.total() / dnuca.total());
    std::cout << "\nTLC substrate saving vs DNUCA: "
              << TextTable::num(saving, 1) << "% (paper: 18%)\n";
    return 0;
}
