/**
 * @file
 * Ablation: DNUCA's generational promotion policy (DESIGN.md #1).
 * Disabling promotion turns DNUCA into "insert-at-tail SNUCA with
 * search": close hits collapse and mean lookup latency rises,
 * demonstrating why migration is load-bearing for the DNUCA numbers.
 */

#include <iostream>

#include "harness/system.hh"
#include "mem/dram.hh"
#include "nuca/dnuca.hh"
#include "sim/table.hh"
#include "workload/generator.hh"

using namespace tlsim;

namespace
{

struct Result
{
    double closeHitPct;
    double meanLookup;
    double ipc;
};

Result
run(const nuca::DnucaConfig &cfg,
    const workload::BenchmarkProfile &profile)
{
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    nuca::DnucaCache cache(eq, &root, dram, phys::tech45(), cfg);
    mem::L1Cache l1i("l1i", eq, &root, cache, 64 * 1024, 2, 3, 4);
    mem::L1Cache l1d("l1d", eq, &root, cache, 64 * 1024, 2, 3, 8);
    cpu::CoreConfig core_cfg;
    core_cfg.fetchQuanta = profile.ilpQuanta;
    cpu::OoOCore core(eq, &root, l1i, l1d, core_cfg);

    workload::TraceGenerator gen(profile, 0);
    // Functional warm, timed warm, measure.
    for (std::uint64_t i = 0; i < 40'000'000;) {
        auto rec = gen.next();
        i += rec.gap + (rec.isIFetch ? 0 : 1);
        if (rec.isIFetch) {
            l1i.accessFunctional(rec.blockAddr,
                                 mem::AccessType::InstFetch);
        } else {
            l1d.accessFunctional(rec.blockAddr, rec.type);
        }
    }
    core.run(gen, 1'000'000);
    root.resetStats();
    cache.beginMeasurement();
    std::uint64_t cycles = core.run(gen, 3'000'000);

    Result result;
    double lookups = std::max(1.0, static_cast<double>(
                                       cache.lookupLatency.count()));
    result.closeHitPct = 100.0 * cache.closeHits.value() / lookups;
    result.meanLookup = cache.lookupLatency.mean();
    result.ipc = 3'000'000.0 / static_cast<double>(cycles);
    return result;
}

} // namespace

int
main()
{
    TextTable table("Ablation: DNUCA placement policies "
                    "(Kim et al. design space)");
    table.setHeader({"Bench", "Policy", "close-hit%",
                     "mean lookup [cyc]", "IPC"});

    struct Policy
    {
        const char *name;
        bool promote;
        std::uint32_t distance;
        std::uint32_t insertion;
    };
    const Policy policies[] = {
        {"promote-1, insert-tail (paper)", true, 1, 15},
        {"no promotion", false, 1, 15},
        {"promote-2, insert-tail", true, 2, 15},
        {"promote-1, insert-middle", true, 1, 8},
        {"promote-1, insert-head", true, 1, 0},
    };

    for (const char *bench : {"gcc", "mcf", "oltp"}) {
        const auto &profile = workload::profileByName(bench);
        for (const Policy &policy : policies) {
            std::cerr << "  running " << bench << " / " << policy.name
                      << "...\n";
            nuca::DnucaConfig cfg;
            cfg.promoteOnHit = policy.promote;
            cfg.promotionDistance = policy.distance;
            cfg.insertionBank = policy.insertion;
            Result r = run(cfg, profile);
            table.addRow({bench, policy.name,
                          TextTable::num(r.closeHitPct, 1),
                          TextTable::num(r.meanLookup, 1),
                          TextTable::num(r.ipc, 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected: disabling promotion collapses close "
                 "hits; head insertion pollutes the fast banks with "
                 "streaming data; the paper's tail-insert + 1-step "
                 "promotion is the robust point.\n";
    return 0;
}
