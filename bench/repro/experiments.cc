#include "repro/experiments.hh"

#include <algorithm>
#include <cstdlib>

#include "paperdata.hh"
#include "sim/table.hh"

namespace tlsim
{
namespace repro
{

using harness::DesignKind;
using harness::RunResult;
using harness::sweep::RunSpec;

harness::SystemConfig
defaultRunConfig()
{
    harness::SystemConfig config;
    const char *fast = std::getenv("TLSIM_FAST");
    if (fast && fast[0] == '1') {
        config.warmup = 2'000'000;
        config.measure = 1'000'000;
        config.functionalWarm = 20'000'000;
    }
    return config;
}

namespace
{

RunSpec
makeSpec(DesignKind design, const std::string &bench,
         const harness::SystemConfig &base)
{
    RunSpec spec;
    spec.benchmark = bench;
    spec.config = base;
    spec.config.design = harness::designName(design);
    return spec;
}

/** design x benchmark cross product over all 12 paper benchmarks. */
std::vector<RunSpec>
crossSpecs(const std::vector<DesignKind> &designs,
           const harness::SystemConfig &base)
{
    std::vector<RunSpec> specs;
    for (const auto &bench : paperdata::benchmarks)
        for (DesignKind design : designs)
            specs.push_back(makeSpec(design, bench, base));
    return specs;
}

// --- Table 6: benchmark characteristics --------------------------

std::vector<RunSpec>
table6Specs(const harness::SystemConfig &base)
{
    return crossSpecs({DesignKind::TlcBase, DesignKind::Dnuca},
                      base);
}

void
table6Render(std::ostream &os, const ResultLookup &lookup)
{
    TextTable table("Table 6: Benchmark Characteristics "
                    "(paper -> measured)");
    table.setHeader({"Bench", "L2req/1K", "TLC miss/1K (paper)",
                     "DNUCA miss/1K (paper)", "close-hit% (paper)",
                     "promotes/insert (paper)", "TLC pred% (paper)",
                     "DNUCA pred% (paper)"});

    for (const auto &row : paperdata::table6) {
        const auto &tlc = lookup(DesignKind::TlcBase, row.bench);
        const auto &dnuca = lookup(DesignKind::Dnuca, row.bench);
        table.addRow({
            row.bench,
            TextTable::num(tlc.l2RequestsPer1k, 1) + " (" +
                TextTable::num(paperdata::table6RequestsPer1k(row), 1) +
                ")",
            TextTable::num(tlc.l2MissesPer1k, 3) + " (" +
                TextTable::num(row.tlcMissPer1k, 3) + ")",
            TextTable::num(dnuca.l2MissesPer1k, 3) + " (" +
                TextTable::num(row.dnucaMissPer1k, 3) + ")",
            TextTable::num(dnuca.closeHitPct, 1) + " (" +
                TextTable::num(row.dnucaCloseHitPct, 1) + ")",
            TextTable::num(dnuca.promotesPerInsert, 2) + " (" +
                TextTable::num(row.dnucaPromotesPerInsert, 2) + ")",
            TextTable::num(tlc.predictablePct, 0) + " (" +
                TextTable::num(row.tlcPredictablePct, 0) + ")",
            TextTable::num(dnuca.predictablePct, 0) + " (" +
                TextTable::num(row.dnucaPredictablePct, 0) + ")",
        });
    }
    table.print(os);
}

// --- Table 9: dynamic components ---------------------------------

std::vector<RunSpec>
table9Specs(const harness::SystemConfig &base)
{
    return crossSpecs({DesignKind::TlcBase, DesignKind::Dnuca},
                      base);
}

void
table9Render(std::ostream &os, const ResultLookup &lookup)
{
    TextTable table("Table 9: Dynamic Components (measured (paper))");
    table.setHeader({"Bench", "DNUCA banks/req", "TLC banks/req",
                     "DNUCA net power [mW]", "TLC net power [mW]"});

    double dnuca_sum = 0.0, tlc_sum = 0.0;
    for (const auto &row : paperdata::table9) {
        const auto &tlc = lookup(DesignKind::TlcBase, row.bench);
        const auto &dnuca = lookup(DesignKind::Dnuca, row.bench);
        table.addRow({
            row.bench,
            TextTable::num(dnuca.banksPerRequest, 1) + " (" +
                TextTable::num(row.dnucaBanksPerRequest, 1) + ")",
            TextTable::num(tlc.banksPerRequest, 1) + " (" +
                TextTable::num(row.tlcBanksPerRequest, 1) + ")",
            TextTable::num(dnuca.networkPowerMw, 0) + " (" +
                TextTable::num(row.dnucaNetworkPowerMw, 0) + ")",
            TextTable::num(tlc.networkPowerMw, 0) + " (" +
                TextTable::num(row.tlcNetworkPowerMw, 0) + ")",
        });
        dnuca_sum += dnuca.networkPowerMw;
        tlc_sum += tlc.networkPowerMw;
    }
    table.print(os);

    double reduction = 100.0 * (1.0 - tlc_sum / dnuca_sum);
    os << "\nAverage TLC network dynamic power reduction: "
       << TextTable::num(reduction, 0) << "% (paper: 61%)\n";
}

// --- Figure 5: normalized execution time -------------------------

std::vector<RunSpec>
fig5Specs(const harness::SystemConfig &base)
{
    return crossSpecs({DesignKind::Snuca2, DesignKind::Dnuca,
                       DesignKind::TlcBase},
                      base);
}

void
fig5Render(std::ostream &os, const ResultLookup &lookup)
{
    TextTable table("Figure 5: Normalized Execution Time vs SNUCA2 "
                    "(measured (paper, read off plot))");
    table.setHeader({"Bench", "DNUCA", "TLC"});

    for (const auto &row : paperdata::fig5) {
        const auto &snuca = lookup(DesignKind::Snuca2, row.bench);
        const auto &dnuca = lookup(DesignKind::Dnuca, row.bench);
        const auto &tlc = lookup(DesignKind::TlcBase, row.bench);
        double base = static_cast<double>(snuca.cycles);
        table.addRow({
            row.bench,
            TextTable::num(dnuca.cycles / base, 3) + " (" +
                TextTable::num(row.dnuca, 2) + ")",
            TextTable::num(tlc.cycles / base, 3) + " (" +
                TextTable::num(row.tlc, 2) + ")",
        });
    }
    table.print(os);
    os << "\nValues < 1.0 improve on SNUCA2. Expected shape: "
          "both designs win on SPECint/commercial; neither "
          "moves the streaming SPECfp codes; TLC loses "
          "slightly on equake (LRU vs frequency placement).\n";
}

// --- Figure 6: mean lookup latency -------------------------------

std::vector<RunSpec>
fig6Specs(const harness::SystemConfig &base)
{
    return crossSpecs({DesignKind::Dnuca, DesignKind::TlcBase},
                      base);
}

void
fig6Render(std::ostream &os, const ResultLookup &lookup)
{
    TextTable table("Figure 6: Mean Cache Lookup Latency [cycles] "
                    "(measured (paper, read off plot))");
    table.setHeader({"Bench", "DNUCA", "TLC"});

    double tlc_lo = 1e9, tlc_hi = 0.0, dnuca_lo = 1e9, dnuca_hi = 0.0;
    for (const auto &row : paperdata::fig6) {
        const auto &dnuca = lookup(DesignKind::Dnuca, row.bench);
        const auto &tlc = lookup(DesignKind::TlcBase, row.bench);
        table.addRow({
            row.bench,
            TextTable::num(dnuca.meanLookupLatency, 1) + " (" +
                TextTable::num(row.dnuca, 0) + ")",
            TextTable::num(tlc.meanLookupLatency, 1) + " (" +
                TextTable::num(row.tlc, 0) + ")",
        });
        tlc_lo = std::min(tlc_lo, tlc.meanLookupLatency);
        tlc_hi = std::max(tlc_hi, tlc.meanLookupLatency);
        dnuca_lo = std::min(dnuca_lo, dnuca.meanLookupLatency);
        dnuca_hi = std::max(dnuca_hi, dnuca.meanLookupLatency);
    }
    table.print(os);

    os << "\nTLC spread: " << TextTable::num(tlc_lo, 1) << "-"
       << TextTable::num(tlc_hi, 1)
       << " cycles (paper: ~13 flat); DNUCA spread: "
       << TextTable::num(dnuca_lo, 1) << "-"
       << TextTable::num(dnuca_hi, 1) << " cycles (paper: ~10-35).\n";
}

// --- Figure 7: TLC family link utilization -----------------------

std::vector<RunSpec>
fig7Specs(const harness::SystemConfig &base)
{
    return crossSpecs(harness::tlcFamily(), base);
}

void
fig7Render(std::ostream &os, const ResultLookup &lookup)
{
    TextTable table("Figure 7: TLC Average Link Utilization [%]");
    table.setHeader({"Bench", "TLC", "TLCopt1000", "TLCopt500",
                     "TLCopt350"});

    double base_max = 0.0, opt350_max = 0.0;
    for (const auto &bench : paperdata::benchmarks) {
        std::vector<std::string> row{bench};
        for (DesignKind kind : harness::tlcFamily()) {
            const auto &result = lookup(kind, bench);
            row.push_back(
                TextTable::num(result.linkUtilizationPct, 2));
            if (kind == DesignKind::TlcBase) {
                base_max = std::max(base_max,
                                    result.linkUtilizationPct);
            }
            if (kind == DesignKind::TlcOpt350) {
                opt350_max = std::max(opt350_max,
                                      result.linkUtilizationPct);
            }
        }
        table.addRow(row);
    }
    table.print(os);

    os << "\nBase TLC max utilization: " << TextTable::num(base_max, 2)
       << "% (paper: never exceeds 2%); TLCopt350 max: "
       << TextTable::num(opt350_max, 2)
       << "% (paper: never surpasses 13%).\n";
}

// --- Figure 8: TLC family execution time -------------------------

std::vector<RunSpec>
fig8Specs(const harness::SystemConfig &base)
{
    return crossSpecs(harness::tlcFamily(), base);
}

void
fig8Render(std::ostream &os, const ResultLookup &lookup)
{
    TextTable table("Figure 8: TLC Family Execution Time "
                    "(normalized to base TLC)");
    table.setHeader({"Bench", "TLC", "TLCopt1000", "TLCopt500",
                     "TLCopt350", "multi-match% (opt350)"});

    double worst = 0.0;
    for (const auto &bench : paperdata::benchmarks) {
        const auto &base = lookup(DesignKind::TlcBase, bench);
        double base_cycles = static_cast<double>(base.cycles);
        std::vector<std::string> row{bench, "1.000"};
        for (DesignKind kind :
             {DesignKind::TlcOpt1000, DesignKind::TlcOpt500,
              DesignKind::TlcOpt350}) {
            const auto &result = lookup(kind, bench);
            double norm = result.cycles / base_cycles;
            worst = std::max(worst, norm);
            row.push_back(TextTable::num(norm, 3));
        }
        const auto &opt350 = lookup(DesignKind::TlcOpt350, bench);
        row.push_back(TextTable::num(opt350.multiMatchPct, 2));
        table.addRow(row);
    }
    table.print(os);

    os << "\nWorst TLCopt slowdown vs base TLC: "
       << TextTable::num(100.0 * (worst - 1.0), 1)
       << "% (paper: comparable performance; multiple partial "
          "matches in ~1% of lookups).\n";
}

} // namespace

const std::vector<Experiment> &
experiments()
{
    static const std::vector<Experiment> all = {
        {"table6", "benchmark characteristics (TLC + DNUCA)",
         table6Specs, table6Render},
        {"table9", "banks/request and network dynamic power",
         table9Specs, table9Render},
        {"fig5", "execution time normalized to SNUCA2",
         fig5Specs, fig5Render},
        {"fig6", "mean L2 lookup latency consistency",
         fig6Specs, fig6Render},
        {"fig7", "TLC family link utilization",
         fig7Specs, fig7Render},
        {"fig8", "TLC family execution time vs base TLC",
         fig8Specs, fig8Render},
    };
    return all;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const auto &experiment : experiments()) {
        if (name == experiment.name)
            return &experiment;
    }
    return nullptr;
}

} // namespace repro
} // namespace tlsim
