#include "repro/reprocli.hh"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/config.hh"
#include "harness/sweep/sweep.hh"
#include "repro/experiments.hh"
#include "sim/logging.hh"
#include "sim/metrics/heatmap.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"

namespace tlsim
{
namespace repro
{

namespace
{

struct CliOptions
{
    bool list = false;
    bool quiet = false;
    bool useCache = true;
    bool dumpConfig = false;
    int jobs = 0; // 0 = hardware concurrency
    std::string filter;
    std::string cacheDir;
    std::string statsJson;
    std::string debugFlags;
    std::string traceOut;
    /** --config FILE replaces the default base config entirely. */
    std::string configFile;
    /** Flag overrides, applied on top of whatever config loaded. */
    std::optional<int> cores;
    std::optional<std::uint64_t> warmup;
    std::optional<std::uint64_t> measure;
    std::optional<std::uint64_t> functionalWarm;
    /** Fault-injection overrides; any of them enables the fault model. */
    std::optional<double> faultBer;
    std::optional<std::string> faultDeadLinks;
    std::optional<std::string> faultStuckBanks;
    bool faultMargin = false;
    /** Telemetry v2: fleet metrics, run ledger, profiler, heatmaps. */
    std::string metricsOut;
    std::string manifestOut;
    std::string profOut;
    bool heatmaps = false;
    bool progress = false;
    std::optional<std::uint64_t> heatmapWindow;

    /**
     * Effective base machine: defaults (or --config file), then
     * individual flag overrides — order on the command line does not
     * matter.
     */
    harness::SystemConfig
    baseConfig() const
    {
        harness::SystemConfig config = configFile.empty()
                                           ? defaultRunConfig()
                                           : harness::loadConfigFile(
                                                 configFile);
        if (cores)
            config.cores = *cores;
        if (warmup)
            config.warmup = *warmup;
        if (measure)
            config.measure = *measure;
        if (functionalWarm)
            config.functionalWarm = *functionalWarm;
        if (faultBer) {
            config.fault.enabled = true;
            config.fault.bitErrorRate = *faultBer;
        }
        if (faultDeadLinks) {
            config.fault.enabled = true;
            config.fault.deadLinks = *faultDeadLinks;
        }
        if (faultStuckBanks) {
            config.fault.enabled = true;
            config.fault.stuckBanks = *faultStuckBanks;
        }
        if (faultMargin) {
            config.fault.enabled = true;
            config.fault.deriveFromMargin = true;
        }
        return config;
    }
};

void
printUsage(std::ostream &os)
{
    os << "usage: tlsim_repro [options]\n"
          "  --list              print the experiments and exit\n"
          "  --filter a,b        run only the named experiments\n"
          "  --jobs N            worker threads (default: hardware "
          "threads)\n"
          "  --cache-dir DIR     result-cache directory (default "
          "$TLSIM_CACHE_DIR or tlsim_result_cache)\n"
          "  --no-cache          disable result memoization\n"
          "  --stats-json FILE   merged per-run stats JSON, in spec "
          "order\n"
          "  --config FILE       load the machine config (JSON, see "
          "--dump-config)\n"
          "  --dump-config       print the effective config JSON and "
          "exit\n"
          "  --cores N           CMP cores sharing the L2 (default "
          "1)\n"
          "  --warm N            timed-warmup instructions per run\n"
          "  --measure N         measured instructions per run\n"
          "  --funcwarm N        functional-warmup instructions per "
          "run\n"
          "  --fault-ber P       per-link transient bit-error "
          "probability (enables fault injection)\n"
          "  --fault-dead-links S  dead-link schedule 'id@tick,...' "
          "(enables fault injection)\n"
          "  --fault-stuck-banks S stuck-bank schedule 'id@tick,...' "
          "(enables fault injection)\n"
          "  --fault-margin      scale bit errors by each line's "
          "signal-integrity margin\n"
          "  --quiet             suppress per-run progress\n"
          "  --progress          live one-line sweep progress/ETA on "
          "stderr\n"
          "  --metrics-out FILE  Prometheus text-format sweep metrics "
          "(rewritten per completion)\n"
          "  --manifest FILE     per-run JSONL ledger of the sweep\n"
          "  --prof-out FILE     enable the self-profiler; write "
          "collapsed stacks to FILE,\n"
          "                      attribution table to stderr\n"
          "  --heatmaps          collect spatial bank/link utilization "
          "heatmaps into the stats JSON\n"
          "  --heatmap-window N  heatmap time-window width in ticks "
          "(default 4096)\n"
          "  --debug-flags F,F   debug output (see --jobs 1)\n"
          "  --trace-out FILE    Chrome trace (forces --jobs 1)\n"
          "  --help              this text\n"
          "\nexperiments (--filter, comma separated):\n";
    for (const auto &experiment : experiments())
        os << "  " << experiment.name << "  \t" << experiment.title
           << "\n";
    os << "\nSet TLSIM_FAST=1 for reduced smoke-test budgets.\n";
}

/**
 * Parse "--key=value" or "--key value"; on match, stores the value
 * and advances @p i past any consumed extra argument.
 */
bool
matchValue(int argc, char **argv, int &i, const char *key,
           std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(argv[i], key, len) != 0)
        return false;
    if (argv[i][len] == '=') {
        value = argv[i] + len + 1;
        return true;
    }
    if (argv[i][len] == '\0' && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    return false;
}

bool
parseArgs(int argc, char **argv, CliOptions &opts)
{
    std::string value;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            opts.list = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            opts.useCache = false;
        } else if (std::strcmp(argv[i], "--dump-config") == 0) {
            opts.dumpConfig = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else if (matchValue(argc, argv, i, "--filter",
                              opts.filter) ||
                   matchValue(argc, argv, i, "--cache-dir",
                              opts.cacheDir) ||
                   matchValue(argc, argv, i, "--stats-json",
                              opts.statsJson) ||
                   matchValue(argc, argv, i, "--debug-flags",
                              opts.debugFlags) ||
                   matchValue(argc, argv, i, "--trace-out",
                              opts.traceOut) ||
                   matchValue(argc, argv, i, "--config",
                              opts.configFile) ||
                   matchValue(argc, argv, i, "--metrics-out",
                              opts.metricsOut) ||
                   matchValue(argc, argv, i, "--manifest",
                              opts.manifestOut) ||
                   matchValue(argc, argv, i, "--prof-out",
                              opts.profOut)) {
            continue;
        } else if (matchValue(argc, argv, i, "--jobs", value)) {
            opts.jobs = std::atoi(value.c_str());
        } else if (matchValue(argc, argv, i, "--cores", value)) {
            opts.cores = std::atoi(value.c_str());
        } else if (matchValue(argc, argv, i, "--warm", value)) {
            opts.warmup = std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--measure", value)) {
            opts.measure = std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--funcwarm", value)) {
            opts.functionalWarm =
                std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--fault-ber", value)) {
            opts.faultBer = std::strtod(value.c_str(), nullptr);
        } else if (matchValue(argc, argv, i, "--fault-dead-links",
                              value)) {
            opts.faultDeadLinks = value;
        } else if (matchValue(argc, argv, i, "--fault-stuck-banks",
                              value)) {
            opts.faultStuckBanks = value;
        } else if (std::strcmp(argv[i], "--fault-margin") == 0) {
            opts.faultMargin = true;
        } else if (std::strcmp(argv[i], "--heatmaps") == 0) {
            opts.heatmaps = true;
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            opts.progress = true;
        } else if (matchValue(argc, argv, i, "--heatmap-window",
                              value)) {
            opts.heatmapWindow =
                std::strtoull(value.c_str(), nullptr, 10);
        } else {
            std::cerr << "tlsim_repro: unknown argument '" << argv[i]
                      << "'\n\n";
            printUsage(std::cerr);
            return false;
        }
    }
    return true;
}

std::vector<const Experiment *>
selectExperiments(const std::string &filter, bool &ok)
{
    std::vector<const Experiment *> selected;
    ok = true;
    if (filter.empty()) {
        for (const auto &experiment : experiments())
            selected.push_back(&experiment);
        return selected;
    }
    std::istringstream names(filter);
    std::string name;
    while (std::getline(names, name, ',')) {
        if (name.empty())
            continue;
        const Experiment *experiment = findExperiment(name);
        if (!experiment) {
            std::cerr << "tlsim_repro: unknown experiment '" << name
                      << "' (see --list)\n";
            ok = false;
            return {};
        }
        selected.push_back(experiment);
    }
    return selected;
}

} // namespace

int
reproMain(int argc, char **argv)
{
    CliOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 1;

    if (opts.dumpConfig) {
        harness::saveConfigJson(opts.baseConfig(), std::cout);
        return 0;
    }

    if (opts.list) {
        for (const auto &experiment : experiments())
            std::cout << experiment.name << "  \t" << experiment.title
                      << "\n";
        return 0;
    }

    bool ok = false;
    auto selected = selectExperiments(opts.filter, ok);
    if (!ok)
        return 1;

    if (!opts.debugFlags.empty())
        debug::setFlags(opts.debugFlags);

    int jobs = opts.jobs;
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }

    std::unique_ptr<trace::TraceSink> sink;
    if (!opts.traceOut.empty()) {
        if (jobs > 1) {
            warn("--trace-out interleaves spans across workers; "
                 "forcing --jobs 1");
            jobs = 1;
        }
        sink = std::make_unique<trace::TraceSink>(opts.traceOut);
        trace::TraceSink::setActive(sink.get());
    }

    std::string cache_dir;
    if (opts.useCache) {
        if (!opts.cacheDir.empty()) {
            cache_dir = opts.cacheDir;
        } else if (const char *env = std::getenv("TLSIM_CACHE_DIR")) {
            cache_dir = env;
        } else {
            cache_dir = "tlsim_result_cache";
        }
    }

    // Union of every selected experiment's specs, deduplicated so
    // shared cells (e.g. Figure 5 and 6 both need DNUCA runs)
    // simulate once.
    harness::SystemConfig base = opts.baseConfig();
    std::vector<harness::sweep::RunSpec> specs;
    for (const auto *experiment : selected)
        for (const auto &spec : experiment->specs(base))
            harness::sweep::addUnique(specs, spec);

    // Telemetry knobs take effect before any System is built: the
    // spatial flag is read at design construction, and the profiler's
    // enabled-check sits on every dispatch site.
    metrics::spatialEnabled = opts.heatmaps;
    if (opts.heatmapWindow)
        metrics::spatialWindowTicks = *opts.heatmapWindow;
    if (!opts.profOut.empty())
        prof::setEnabled(true);

    harness::sweep::SweepOptions sweep_opts;
    sweep_opts.jobs = jobs;
    sweep_opts.cacheDir = cache_dir;
    sweep_opts.captureStats = !opts.statsJson.empty();
    sweep_opts.verbose = !opts.quiet;
    sweep_opts.metricsOut = opts.metricsOut;
    sweep_opts.manifestOut = opts.manifestOut;
    sweep_opts.progress = opts.progress;

    auto outcome = harness::sweep::runSweep(specs, sweep_opts);

    if (!opts.profOut.empty()) {
        prof::setEnabled(false);
        std::ofstream collapsed(opts.profOut);
        if (!collapsed.is_open()) {
            warn("cannot open profile output '{}'", opts.profOut);
        } else {
            prof::Registry::instance().writeCollapsed(collapsed);
            if (!opts.quiet)
                inform("collapsed stacks written: {}", opts.profOut);
        }
        prof::Registry::instance().writeReport(std::cerr);
    }

    if (!opts.quiet) {
        std::cerr << "sweep: " << outcome.executed << " simulated, "
                  << outcome.cached << " from cache";
        if (outcome.failed > 0)
            std::cerr << ", " << outcome.failed << " FAILED";
        if (!cache_dir.empty())
            std::cerr << " (" << cache_dir << ")";
        std::cerr << std::endl;
    }
    if (outcome.failed > 0) {
        std::cerr << "tlsim_repro: " << outcome.failed
                  << " run(s) failed:\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!outcome.results[i].error.empty())
                std::cerr << "  " << harness::sweep::specKey(specs[i])
                          << ": " << outcome.results[i].error << "\n";
        }
    }

    std::map<std::pair<std::string, std::string>, std::size_t> index;
    for (std::size_t i = 0; i < specs.size(); ++i)
        index[{specs[i].config.design, specs[i].benchmark}] = i;
    ResultLookup lookup =
        [&](harness::DesignKind design,
            const std::string &bench) -> const harness::RunResult & {
        auto it = index.find({harness::designName(design), bench});
        if (it == index.end())
            panic("experiment requested a run outside its spec list: "
                  "{}/{}",
                  harness::designName(design), bench);
        return outcome.results[it->second];
    };

    bool first = true;
    for (const auto *experiment : selected) {
        if (!first)
            std::cout << "\n";
        first = false;
        experiment->render(std::cout, lookup);
    }

    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson);
        if (!out.is_open())
            fatal("cannot open stats JSON file '{}'", opts.statsJson);
        out << harness::sweep::mergedStatsJson(specs, outcome);
        if (!opts.quiet)
            inform("stats JSON written: {}", opts.statsJson);
    }

    if (sink) {
        trace::TraceSink::setActive(nullptr);
        sink->close();
        if (!opts.quiet)
            inform("trace written: {} ({} events)", opts.traceOut,
                   sink->eventCount());
    }
    return outcome.failed > 0 ? 1 : 0;
}

int
experimentMain(const char *experiment_name, int argc, char **argv)
{
    // Inject "--filter <name>" unless the caller gave one explicitly.
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--filter", 8) == 0)
            return reproMain(argc, argv);
    }
    std::vector<char *> args(argv, argv + argc);
    std::string filter = std::string("--filter=") + experiment_name;
    std::vector<char> filter_arg(filter.begin(), filter.end());
    filter_arg.push_back('\0');
    args.push_back(filter_arg.data());
    return reproMain(static_cast<int>(args.size()), args.data());
}

} // namespace repro
} // namespace tlsim
