#include "repro/reprocli.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/config.hh"
#include "harness/sweep/sweep.hh"
#include "harness/tracerun.hh"
#include "repro/experiments.hh"
#include "sim/logging.hh"
#include "sim/metrics/heatmap.hh"
#include "sim/prof/prof.hh"
#include "sim/trace/debug.hh"
#include "sim/trace/tracesink.hh"
#include "workload/tracefile.hh"

namespace tlsim
{
namespace repro
{

namespace
{

struct CliOptions
{
    bool list = false;
    bool quiet = false;
    bool useCache = true;
    bool dumpConfig = false;
    int jobs = 0; // 0 = hardware concurrency
    std::string filter;
    std::string cacheDir;
    std::string statsJson;
    std::string debugFlags;
    std::string traceOut;
    /** --config FILE replaces the default base config entirely. */
    std::string configFile;
    /** Flag overrides, applied on top of whatever config loaded. */
    std::optional<int> cores;
    /** Event domains per run (--domains N / --par-run). */
    std::optional<int> domains;
    std::optional<std::uint64_t> warmup;
    std::optional<std::uint64_t> measure;
    std::optional<std::uint64_t> functionalWarm;
    /** Memory-backend overrides (mem::MemRegistry names/options). */
    std::optional<std::string> memBackend;
    std::vector<std::pair<std::string, double>> memOpts;
    /** Fault-injection overrides; any of them enables the fault model. */
    std::optional<double> faultBer;
    std::optional<std::string> faultDeadLinks;
    std::optional<std::string> faultStuckBanks;
    std::optional<std::string> faultDramStuckBanks;
    bool faultMargin = false;
    /** Robustness (docs/ROBUSTNESS.md). */
    std::string isolate = "thread";
    double runTimeoutSec = 0.0;
    std::uint64_t rlimitCpuSec = 0;
    std::uint64_t rlimitRssMb = 0;
    std::string journalPath;
    bool resume = false;
    bool fsckCache = false;
    /** Telemetry v2: fleet metrics, run ledger, profiler, heatmaps. */
    std::string metricsOut;
    std::string manifestOut;
    std::string profOut;
    bool heatmaps = false;
    bool progress = false;
    std::optional<std::uint64_t> heatmapWindow;
    /** Trace replay (docs/SAMPLING.md): set by --trace FILE. */
    std::string trace;
    bool traceFull = false;
    bool traceValidate = false;
    std::uint32_t intervals = 4;
    std::uint64_t intervalSize = 100'000;
    std::string checkpointDir;

    /**
     * Effective base machine: defaults (or --config file), then
     * individual flag overrides — order on the command line does not
     * matter.
     */
    harness::SystemConfig
    baseConfig() const
    {
        harness::SystemConfig config = configFile.empty()
                                           ? defaultRunConfig()
                                           : harness::loadConfigFile(
                                                 configFile);
        if (cores)
            config.cores = *cores;
        if (domains)
            config.domains = *domains;
        if (warmup)
            config.warmup = *warmup;
        if (measure)
            config.measure = *measure;
        if (functionalWarm)
            config.functionalWarm = *functionalWarm;
        if (memBackend)
            config.mem.backend = *memBackend;
        for (const auto &[key, val] : memOpts)
            config.mem.options[key] = val;
        if (faultBer) {
            config.fault.enabled = true;
            config.fault.bitErrorRate = *faultBer;
        }
        if (faultDeadLinks) {
            config.fault.enabled = true;
            config.fault.deadLinks = *faultDeadLinks;
        }
        if (faultStuckBanks) {
            config.fault.enabled = true;
            config.fault.stuckBanks = *faultStuckBanks;
        }
        if (faultDramStuckBanks) {
            config.fault.enabled = true;
            config.fault.dramStuckBanks = *faultDramStuckBanks;
        }
        if (faultMargin) {
            config.fault.enabled = true;
            config.fault.deriveFromMargin = true;
        }
        return config;
    }
};

void
printUsage(std::ostream &os)
{
    os << "usage: tlsim_repro [options]\n"
          "  --list              print the experiments and exit\n"
          "  --filter a,b        run only the named experiments\n"
          "  --jobs N            worker threads (default: hardware "
          "threads)\n"
          "  --cache-dir DIR     result-cache directory (default "
          "$TLSIM_CACHE_DIR or tlsim_result_cache)\n"
          "  --no-cache          disable result memoization\n"
          "  --stats-json FILE   merged per-run stats JSON, in spec "
          "order (trace mode: tlsim-tracerun-v1 document)\n"
          "  --config FILE       load the machine config (JSON, see "
          "--dump-config)\n"
          "  --dump-config       print the effective config JSON and "
          "exit\n"
          "  --cores N           CMP cores sharing the L2 (default "
          "1)\n"
          "  --domains N         event domains per run for partitioned "
          "(conservative-PDES) execution;\n"
          "                      results are byte-identical at any N "
          "(default 1: classic serial loop)\n"
          "  --par-run           shorthand: pick a domain count from "
          "the hardware thread count\n"
          "  --warm N            timed-warmup instructions per run\n"
          "  --measure N         measured instructions per run\n"
          "  --funcwarm N        functional-warmup instructions per "
          "run\n"
          "  --mem NAME          main-memory backend: fixed (default, "
          "paper machine) or ddr\n"
          "  --mem-opt K=V       memory-backend option override "
          "(repeatable, e.g. --mem-opt tCAS=42)\n"
          "  --fault-ber P       per-link transient bit-error "
          "probability (enables fault injection)\n"
          "  --fault-dead-links S  dead-link schedule 'id@tick,...' "
          "(enables fault injection)\n"
          "  --fault-stuck-banks S stuck-bank schedule 'id@tick,...' "
          "(enables fault injection)\n"
          "  --fault-dram-stuck-banks S stuck DRAM-bank schedule "
          "'id@tick,...' (enables fault injection)\n"
          "  --fault-margin      scale bit errors by each line's "
          "signal-integrity margin\n"
          "  --isolate MODE      run containment: none, thread "
          "(default), or process\n"
          "                      (forked, rlimit-capped child per "
          "run; crashes become per-run errors)\n"
          "  --run-timeout SEC   per-run wall-clock timeout (process: "
          "sandbox kill; thread: watchdog)\n"
          "  --rlimit-cpu SEC    per-run CPU-seconds cap "
          "(--isolate=process only)\n"
          "  --rlimit-rss MB     per-run address-space cap in MiB "
          "(--isolate=process only)\n"
          "  --journal FILE      durable write-ahead sweep journal "
          "(JSONL, fsync'd per record)\n"
          "  --resume FILE       resume an interrupted sweep from its "
          "journal (skips completed runs)\n"
          "  --fsck-cache        validate the result cache, "
          "quarantine corrupt entries, and exit\n"
          "                      (exit 0 clean, 2 when entries were "
          "quarantined)\n"
          "  --quiet             suppress per-run progress\n"
          "  --progress          live one-line sweep progress/ETA on "
          "stderr\n"
          "  --metrics-out FILE  Prometheus text-format sweep metrics "
          "(rewritten per completion)\n"
          "  --manifest FILE     per-run JSONL ledger of the sweep\n"
          "  --prof-out FILE     enable the self-profiler; write "
          "collapsed stacks to FILE,\n"
          "                      attribution table to stderr\n"
          "  --heatmaps          collect spatial bank/link utilization "
          "heatmaps into the stats JSON\n"
          "  --heatmap-window N  heatmap time-window width in ticks "
          "(default 4096)\n"
          "  --debug-flags F,F   debug output (see --jobs 1)\n"
          "  --trace-out FILE    Chrome trace (forces --jobs 1)\n"
          "  --trace FILE        replay a captured .tlt trace with "
          "SimPoint-style interval sampling\n"
          "                      instead of the experiment sweep "
          "(docs/SAMPLING.md)\n"
          "  --trace-full        time the entire trace instead of "
          "sampling it\n"
          "  --trace-validate    run the sampled and the full replay, "
          "report accuracy and speedup\n"
          "  --intervals K       representative intervals to simulate "
          "(default 4)\n"
          "  --interval-size N   interval length in instructions "
          "(default 100000)\n"
          "  --checkpoint-dir D  warm-state checkpoint directory "
          "(default <cache-dir>/warm;\n"
          "                      --no-cache without this flag disables "
          "checkpointing)\n"
          "  --help              this text\n"
          "\nStats-JSON/cache run keys are "
          "design/bench/w…/m…/f…/s…; machines that differ\n"
          "from the default gain a /c<hash> suffix (the 16-hex-digit "
          "machine-config hash,\n"
          "see docs/REPRODUCING.md) so runs on different machines "
          "never collide.\n"
          "\nexperiments (--filter, comma separated):\n";
    for (const auto &experiment : experiments())
        os << "  " << experiment.name << "  \t" << experiment.title
           << "\n";
    os << "\nSet TLSIM_FAST=1 for reduced smoke-test budgets.\n";
}

/**
 * Parse "--key=value" or "--key value"; on match, stores the value
 * and advances @p i past any consumed extra argument.
 */
bool
matchValue(int argc, char **argv, int &i, const char *key,
           std::string &value)
{
    std::size_t len = std::strlen(key);
    if (std::strncmp(argv[i], key, len) != 0)
        return false;
    if (argv[i][len] == '=') {
        value = argv[i] + len + 1;
        return true;
    }
    if (argv[i][len] == '\0' && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    return false;
}

bool
parseArgs(int argc, char **argv, CliOptions &opts)
{
    std::string value;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            opts.list = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            opts.quiet = true;
        } else if (std::strcmp(argv[i], "--no-cache") == 0) {
            opts.useCache = false;
        } else if (std::strcmp(argv[i], "--dump-config") == 0) {
            opts.dumpConfig = true;
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            printUsage(std::cout);
            std::exit(0);
        } else if (matchValue(argc, argv, i, "--filter",
                              opts.filter) ||
                   matchValue(argc, argv, i, "--cache-dir",
                              opts.cacheDir) ||
                   matchValue(argc, argv, i, "--stats-json",
                              opts.statsJson) ||
                   matchValue(argc, argv, i, "--debug-flags",
                              opts.debugFlags) ||
                   matchValue(argc, argv, i, "--trace-out",
                              opts.traceOut) ||
                   matchValue(argc, argv, i, "--config",
                              opts.configFile) ||
                   matchValue(argc, argv, i, "--metrics-out",
                              opts.metricsOut) ||
                   matchValue(argc, argv, i, "--manifest",
                              opts.manifestOut) ||
                   matchValue(argc, argv, i, "--prof-out",
                              opts.profOut)) {
            continue;
        } else if (std::strcmp(argv[i], "--fsck-cache") == 0) {
            opts.fsckCache = true;
        } else if (matchValue(argc, argv, i, "--isolate", value)) {
            if (value != "none" && value != "thread" &&
                value != "process") {
                std::cerr << "tlsim_repro: --isolate expects none, "
                             "thread, or process, got '"
                          << value << "'\n";
                return false;
            }
            opts.isolate = value;
        } else if (matchValue(argc, argv, i, "--run-timeout",
                              value)) {
            opts.runTimeoutSec = std::strtod(value.c_str(), nullptr);
        } else if (matchValue(argc, argv, i, "--rlimit-cpu", value)) {
            opts.rlimitCpuSec =
                std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--rlimit-rss", value)) {
            opts.rlimitRssMb =
                std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--journal",
                              opts.journalPath)) {
            continue;
        } else if (matchValue(argc, argv, i, "--resume", value)) {
            opts.journalPath = value;
            opts.resume = true;
        } else if (matchValue(argc, argv, i, "--jobs", value)) {
            opts.jobs = std::atoi(value.c_str());
        } else if (matchValue(argc, argv, i, "--cores", value)) {
            opts.cores = std::atoi(value.c_str());
        } else if (matchValue(argc, argv, i, "--domains", value)) {
            opts.domains = std::atoi(value.c_str());
            if (*opts.domains < 1) {
                std::cerr << "tlsim_repro: --domains expects a "
                             "positive count, got '" << value << "'\n";
                return false;
            }
        } else if (std::strcmp(argv[i], "--par-run") == 0) {
            unsigned hw = std::thread::hardware_concurrency();
            opts.domains = static_cast<int>(
                std::max(2u, std::min(8u, hw ? hw : 2u)));
        } else if (matchValue(argc, argv, i, "--warm", value)) {
            opts.warmup = std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--measure", value)) {
            opts.measure = std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--funcwarm", value)) {
            opts.functionalWarm =
                std::strtoull(value.c_str(), nullptr, 10);
        } else if (matchValue(argc, argv, i, "--mem-opt", value)) {
            std::size_t eq_pos = value.find('=');
            if (eq_pos == std::string::npos || eq_pos == 0) {
                std::cerr << "tlsim_repro: --mem-opt expects KEY=VALUE"
                             ", got '" << value << "'\n";
                return false;
            }
            opts.memOpts.emplace_back(
                value.substr(0, eq_pos),
                std::strtod(value.c_str() + eq_pos + 1, nullptr));
        } else if (matchValue(argc, argv, i, "--mem", value)) {
            opts.memBackend = value;
        } else if (matchValue(argc, argv, i, "--fault-ber", value)) {
            opts.faultBer = std::strtod(value.c_str(), nullptr);
        } else if (matchValue(argc, argv, i, "--fault-dead-links",
                              value)) {
            opts.faultDeadLinks = value;
        } else if (matchValue(argc, argv, i,
                              "--fault-dram-stuck-banks", value)) {
            opts.faultDramStuckBanks = value;
        } else if (matchValue(argc, argv, i, "--fault-stuck-banks",
                              value)) {
            opts.faultStuckBanks = value;
        } else if (std::strcmp(argv[i], "--fault-margin") == 0) {
            opts.faultMargin = true;
        } else if (std::strcmp(argv[i], "--trace-full") == 0) {
            opts.traceFull = true;
        } else if (std::strcmp(argv[i], "--trace-validate") == 0) {
            opts.traceValidate = true;
        } else if (matchValue(argc, argv, i, "--trace", opts.trace) ||
                   matchValue(argc, argv, i, "--checkpoint-dir",
                              opts.checkpointDir)) {
            continue;
        } else if (matchValue(argc, argv, i, "--intervals", value)) {
            opts.intervals = static_cast<std::uint32_t>(
                std::strtoul(value.c_str(), nullptr, 10));
        } else if (matchValue(argc, argv, i, "--interval-size",
                              value)) {
            opts.intervalSize =
                std::strtoull(value.c_str(), nullptr, 10);
        } else if (std::strcmp(argv[i], "--heatmaps") == 0) {
            opts.heatmaps = true;
        } else if (std::strcmp(argv[i], "--progress") == 0) {
            opts.progress = true;
        } else if (matchValue(argc, argv, i, "--heatmap-window",
                              value)) {
            opts.heatmapWindow =
                std::strtoull(value.c_str(), nullptr, 10);
        } else {
            std::cerr << "tlsim_repro: unknown argument '" << argv[i]
                      << "'\n\n";
            printUsage(std::cerr);
            return false;
        }
    }
    return true;
}

/** Effective result-cache directory ("" when caching is off). */
std::string
resolveCacheDir(const CliOptions &opts)
{
    if (!opts.useCache)
        return "";
    if (!opts.cacheDir.empty())
        return opts.cacheDir;
    if (const char *env = std::getenv("TLSIM_CACHE_DIR"))
        return env;
    return "tlsim_result_cache";
}

void
jsonEscape(std::ostream &os, const std::string &text)
{
    for (char c : text) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

/** Emit a RunResult as a JSON object (trace-mode stats schema). */
void
runResultJson(std::ostream &os, const harness::RunResult &result,
              const char *indent)
{
    os << "{\n"
       << indent << "  \"design\": \"" << result.design << "\",\n"
       << indent << "  \"cycles\": " << result.cycles << ",\n"
       << indent << "  \"instructions\": " << result.instructions
       << ",\n"
       << indent << "  \"ipc\": " << result.ipc << ",\n"
       << indent << "  \"l2_requests_per_1k\": "
       << result.l2RequestsPer1k << ",\n"
       << indent << "  \"l2_misses_per_1k\": " << result.l2MissesPer1k
       << ",\n"
       << indent << "  \"mean_lookup_latency\": "
       << result.meanLookupLatency << ",\n"
       << indent << "  \"predictable_pct\": " << result.predictablePct
       << ",\n"
       << indent << "  \"banks_per_request\": "
       << result.banksPerRequest << ",\n"
       << indent << "  \"network_power_mw\": "
       << result.networkPowerMw << ",\n"
       << indent << "  \"link_utilization_pct\": "
       << result.linkUtilizationPct << "\n"
       << indent << "}";
}

/**
 * Trace-replay mode (--trace): sampled by default, full with
 * --trace-full, both plus an accuracy/speedup report with
 * --trace-validate. Bypasses the experiment sweep entirely.
 */
int
runTraceMode(const CliOptions &opts)
{
    workload::TraceFile trace = workload::TraceFile::load(opts.trace);

    harness::TraceRunOptions trun;
    trun.config = opts.baseConfig();
    if (trun.config.domains > 1) {
        // Sampled replay serializes warm checkpoints mid-run; the
        // worker domains' shard LRU counters must not leak into
        // checkpoint bytes, so trace mode always runs serial.
        warn("--trace replays run serial (warm checkpoints capture "
             "LRU state); ignoring domains={}",
             trun.config.domains);
        trun.config.domains = 1;
    }
    trun.intervalInstructions = opts.intervalSize;
    trun.maxIntervals = opts.intervals;
    trun.benchmarkLabel =
        std::filesystem::path(opts.trace).filename().string();
    if (!opts.checkpointDir.empty())
        trun.checkpointDir = opts.checkpointDir;
    else if (opts.useCache)
        trun.checkpointDir = resolveCacheDir(opts) + "/warm";

    if (!opts.quiet) {
        std::ostringstream hash;
        hash << std::hex << trace.contentHash();
        inform("trace {}: {} records, {} instructions, hash {}",
               trace.name(), trace.recordCount(),
               trace.instructionCount(), hash.str());
        if (!trun.checkpointDir.empty())
            inform("warm checkpoints: {}", trun.checkpointDir);
    }

    // The transmission-line/wire physics tables are memoized
    // process-wide: build one throwaway System before timing anything
    // so neither replay leg pays (or dodges) the one-off physics
    // solve — wall-clock comparisons stay about simulation work.
    { harness::System prewarm(trun.config); }

    bool run_full = opts.traceFull || opts.traceValidate;
    bool run_sampled = !opts.traceFull || opts.traceValidate;

    harness::RunResult full;
    double full_wall_ms = 0.0;
    if (run_full)
        full = runFullTrace(trace, trun, &full_wall_ms);

    harness::SampledTraceOutcome sampled;
    if (run_sampled)
        sampled = runSampledTrace(trace, trun);

    std::ostream &os = std::cout;
    os << std::fixed << std::setprecision(3);
    if (run_sampled) {
        os << "sampled replay (" << sampled.intervals.size()
           << " intervals x " << trun.intervalInstructions
           << " instructions, "
           << sampled.plan.coveredInstructions
           << " covered):\n"
           << "  interval  start_instr  weight  cluster  warm  "
              "ipc     l2miss/1k\n";
        for (const auto &run : sampled.intervals) {
            os << "  " << std::setw(8) << run.rep.interval << "  "
               << std::setw(11) << run.rep.startInstr << "  "
               << std::setw(6) << run.rep.weight << "  "
               << std::setw(7) << run.rep.clusterSize << "  "
               << (run.fromCheckpoint ? "ckpt" : "cold") << "  "
               << std::setw(6) << run.result.ipc << "  "
               << std::setw(9) << run.result.l2MissesPer1k << "\n";
        }
        os << "  aggregate: ipc " << sampled.aggregate.ipc
           << ", l2miss/1k " << sampled.aggregate.l2MissesPer1k
           << ", lookup " << sampled.aggregate.meanLookupLatency
           << " cyc (" << sampled.checkpointHits << " checkpoint "
           << "hits, " << sampled.checkpointStores << " stores, "
           << sampled.wallMs << " ms)\n";
    }
    if (run_full) {
        os << "full replay: ipc " << full.ipc << ", l2miss/1k "
           << full.l2MissesPer1k << ", lookup "
           << full.meanLookupLatency << " cyc (" << full_wall_ms
           << " ms)\n";
    }

    double speedup = 0.0;
    double ipc_err = 0.0;
    double miss_err = 0.0;
    if (opts.traceValidate) {
        speedup = sampled.wallMs > 0.0 ? full_wall_ms / sampled.wallMs
                                       : 0.0;
        ipc_err = full.ipc != 0.0
                      ? (sampled.aggregate.ipc - full.ipc) / full.ipc
                      : 0.0;
        miss_err = full.l2MissesPer1k != 0.0
                       ? (sampled.aggregate.l2MissesPer1k -
                          full.l2MissesPer1k) /
                             full.l2MissesPer1k
                       : 0.0;
        os << "validate: speedup " << speedup << "x, ipc error "
           << 100.0 * ipc_err << "%, l2miss/1k error "
           << 100.0 * miss_err << "%\n";
    }

    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson);
        if (!out.is_open())
            fatal("cannot open stats JSON file '{}'", opts.statsJson);
        out << std::setprecision(12);
        out << "{\n\"schema\": \"tlsim-tracerun-v1\",\n";
        out << "\"trace\": {\"file\": \"";
        jsonEscape(out, trace.name());
        out << "\", \"records\": " << trace.recordCount()
            << ", \"instructions\": " << trace.instructionCount()
            << ", \"content_hash\": \"" << std::hex
            << trace.contentHash() << std::dec << "\"},\n";
        if (run_sampled) {
            out << "\"plan\": {\"interval_instructions\": "
                << sampled.plan.intervalInstructions
                << ", \"num_intervals\": "
                << sampled.plan.numIntervals
                << ", \"covered_instructions\": "
                << sampled.plan.coveredInstructions
                << ", \"dropped_tail\": " << sampled.plan.droppedTail
                << "},\n";
            out << "\"intervals\": [\n";
            for (std::size_t i = 0; i < sampled.intervals.size();
                 ++i) {
                const auto &run = sampled.intervals[i];
                out << "  {\"interval\": " << run.rep.interval
                    << ", \"start_record\": " << run.rep.startRecord
                    << ", \"start_instr\": " << run.rep.startInstr
                    << ", \"instructions\": " << run.rep.instructions
                    << ", \"weight\": " << run.rep.weight
                    << ", \"cluster_size\": " << run.rep.clusterSize
                    << ", \"from_checkpoint\": "
                    << (run.fromCheckpoint ? "true" : "false")
                    << ", \"stats\": ";
                runResultJson(out, run.result, "  ");
                out << "}"
                    << (i + 1 < sampled.intervals.size() ? "," : "")
                    << "\n";
            }
            out << "],\n";
            out << "\"aggregate\": ";
            runResultJson(out, sampled.aggregate, "");
            out << ",\n";
            out << "\"checkpoint\": {\"dir\": \"";
            jsonEscape(out, trun.checkpointDir);
            out << "\", \"hits\": " << sampled.checkpointHits
                << ", \"stores\": " << sampled.checkpointStores
                << "},\n";
            out << "\"timed_instructions\": "
                << sampled.timedInstructions
                << ",\n\"warm_records_replayed\": "
                << sampled.warmRecordsReplayed
                << ",\n\"sampled_wall_ms\": " << sampled.wallMs
                << ",\n";
        }
        if (run_full) {
            out << "\"full\": ";
            runResultJson(out, full, "");
            out << ",\n\"full_wall_ms\": " << full_wall_ms << ",\n";
        }
        if (opts.traceValidate) {
            out << "\"speedup\": " << speedup
                << ",\n\"ipc_rel_error\": " << ipc_err
                << ",\n\"l2_misses_per_1k_rel_error\": " << miss_err
                << ",\n";
        }
        out << "\"benchmark\": \"";
        jsonEscape(out, trun.benchmarkLabel);
        out << "\"\n}\n";
        if (!opts.quiet)
            inform("stats JSON written: {}", opts.statsJson);
    }
    return 0;
}

std::vector<const Experiment *>
selectExperiments(const std::string &filter, bool &ok)
{
    std::vector<const Experiment *> selected;
    ok = true;
    if (filter.empty()) {
        for (const auto &experiment : experiments())
            selected.push_back(&experiment);
        return selected;
    }
    std::istringstream names(filter);
    std::string name;
    while (std::getline(names, name, ',')) {
        if (name.empty())
            continue;
        const Experiment *experiment = findExperiment(name);
        if (!experiment) {
            std::cerr << "tlsim_repro: unknown experiment '" << name
                      << "' (see --list)\n";
            ok = false;
            return {};
        }
        selected.push_back(experiment);
    }
    return selected;
}

} // namespace

int
reproMain(int argc, char **argv)
{
    CliOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 1;

    if (opts.fsckCache) {
        std::string dir = resolveCacheDir(opts);
        if (dir.empty()) {
            std::cerr << "tlsim_repro: --fsck-cache needs a cache "
                         "directory (--no-cache given)\n";
            return 1;
        }
        auto report = harness::sweep::fsckCache(dir);
        for (const auto &problem : report.problems)
            std::cerr << "  " << problem << "\n";
        std::cout << "fsck " << dir << ": " << report.scanned
                  << " scanned, " << report.valid << " valid, "
                  << report.quarantined << " quarantined";
        if (report.quarantined > 0)
            std::cout << " (moved to " << dir << "/quarantine)";
        std::cout << std::endl;
        return report.quarantined > 0 ? 2 : 0;
    }

    if (opts.dumpConfig) {
        harness::saveConfigJson(opts.baseConfig(), std::cout);
        return 0;
    }

    if (opts.list) {
        for (const auto &experiment : experiments())
            std::cout << experiment.name << "  \t" << experiment.title
                      << "\n";
        return 0;
    }

    if (!opts.trace.empty())
        return runTraceMode(opts);

    bool ok = false;
    auto selected = selectExperiments(opts.filter, ok);
    if (!ok)
        return 1;

    if (!opts.debugFlags.empty())
        debug::setFlags(opts.debugFlags);

    int jobs = opts.jobs;
    if (jobs <= 0) {
        unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }

    std::unique_ptr<trace::TraceSink> sink;
    if (!opts.traceOut.empty()) {
        if (jobs > 1) {
            warn("--trace-out interleaves spans across workers; "
                 "forcing --jobs 1");
            jobs = 1;
        }
        sink = std::make_unique<trace::TraceSink>(opts.traceOut);
        trace::TraceSink::setActive(sink.get());
    }

    std::string cache_dir = resolveCacheDir(opts);

    // Union of every selected experiment's specs, deduplicated so
    // shared cells (e.g. Figure 5 and 6 both need DNUCA runs)
    // simulate once.
    harness::SystemConfig base = opts.baseConfig();
    std::vector<harness::sweep::RunSpec> specs;
    for (const auto *experiment : selected)
        for (const auto &spec : experiment->specs(base))
            harness::sweep::addUnique(specs, spec);

    // Telemetry knobs take effect before any System is built: the
    // spatial flag is read at design construction, and the profiler's
    // enabled-check sits on every dispatch site.
    metrics::spatialEnabled = opts.heatmaps;
    if (opts.heatmapWindow)
        metrics::spatialWindowTicks = *opts.heatmapWindow;
    if (!opts.profOut.empty())
        prof::setEnabled(true);

    harness::sweep::SweepOptions sweep_opts;
    sweep_opts.jobs = jobs;
    sweep_opts.cacheDir = cache_dir;
    sweep_opts.captureStats = !opts.statsJson.empty();
    sweep_opts.verbose = !opts.quiet;
    sweep_opts.metricsOut = opts.metricsOut;
    sweep_opts.manifestOut = opts.manifestOut;
    sweep_opts.progress = opts.progress;
    sweep_opts.isolate =
        opts.isolate == "none"
            ? harness::sweep::Isolation::None
            : opts.isolate == "process"
                  ? harness::sweep::Isolation::Process
                  : harness::sweep::Isolation::Thread;
    sweep_opts.runTimeoutSec = opts.runTimeoutSec;
    sweep_opts.rlimitCpuSec = opts.rlimitCpuSec;
    sweep_opts.rlimitRssMb = opts.rlimitRssMb;
    sweep_opts.journalPath = opts.journalPath;
    sweep_opts.resume = opts.resume;

    auto outcome = harness::sweep::runSweep(specs, sweep_opts);

    if (outcome.interrupted) {
        std::cerr << "tlsim_repro: sweep interrupted after "
                  << (outcome.executed + outcome.cached +
                      outcome.restored)
                  << "/" << specs.size()
                  << " runs; resume with --resume "
                  << opts.journalPath << std::endl;
        return 130;
    }

    if (!opts.profOut.empty()) {
        prof::setEnabled(false);
        std::ofstream collapsed(opts.profOut);
        if (!collapsed.is_open()) {
            warn("cannot open profile output '{}'", opts.profOut);
        } else {
            prof::Registry::instance().writeCollapsed(collapsed);
            if (!opts.quiet)
                inform("collapsed stacks written: {}", opts.profOut);
        }
        prof::Registry::instance().writeReport(std::cerr);
    }

    if (!opts.quiet) {
        std::cerr << "sweep: " << outcome.executed << " simulated, "
                  << outcome.cached << " from cache";
        if (outcome.restored > 0)
            std::cerr << ", " << outcome.restored
                      << " restored from journal";
        if (outcome.failed > 0)
            std::cerr << ", " << outcome.failed << " FAILED";
        if (!cache_dir.empty())
            std::cerr << " (" << cache_dir << ")";
        std::cerr << std::endl;
    }
    if (outcome.failed > 0) {
        std::cerr << "tlsim_repro: " << outcome.failed
                  << " run(s) failed:\n";
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!outcome.results[i].error.empty())
                std::cerr << "  " << harness::sweep::specKey(specs[i])
                          << ": " << outcome.results[i].error << "\n";
        }
    }

    std::map<std::pair<std::string, std::string>, std::size_t> index;
    for (std::size_t i = 0; i < specs.size(); ++i)
        index[{specs[i].config.design, specs[i].benchmark}] = i;
    ResultLookup lookup =
        [&](harness::DesignKind design,
            const std::string &bench) -> const harness::RunResult & {
        auto it = index.find({harness::designName(design), bench});
        if (it == index.end())
            panic("experiment requested a run outside its spec list: "
                  "{}/{}",
                  harness::designName(design), bench);
        return outcome.results[it->second];
    };

    bool first = true;
    for (const auto *experiment : selected) {
        if (!first)
            std::cout << "\n";
        first = false;
        experiment->render(std::cout, lookup);
    }

    if (!opts.statsJson.empty()) {
        std::ofstream out(opts.statsJson);
        if (!out.is_open())
            fatal("cannot open stats JSON file '{}'", opts.statsJson);
        out << harness::sweep::mergedStatsJson(specs, outcome);
        if (!opts.quiet)
            inform("stats JSON written: {}", opts.statsJson);
    }

    if (sink) {
        trace::TraceSink::setActive(nullptr);
        sink->close();
        if (!opts.quiet)
            inform("trace written: {} ({} events)", opts.traceOut,
                   sink->eventCount());
    }
    return outcome.failed > 0 ? 1 : 0;
}

int
experimentMain(const char *experiment_name, int argc, char **argv)
{
    // Inject "--filter <name>" unless the caller gave one explicitly.
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--filter", 8) == 0)
            return reproMain(argc, argv);
    }
    std::vector<char *> args(argv, argv + argc);
    std::string filter = std::string("--filter=") + experiment_name;
    std::vector<char> filter_arg(filter.begin(), filter.end());
    filter_arg.push_back('\0');
    args.push_back(filter_arg.data());
    return reproMain(static_cast<int>(args.size()), args.data());
}

} // namespace repro
} // namespace tlsim
