/**
 * @file
 * Declarative registry of the paper's simulation-driven experiments.
 *
 * Each table/figure of the evaluation that needs full-system
 * simulation (Table 6, Table 9, Figures 5-8) is expressed as an
 * Experiment: a function producing the RunSpecs it needs and a
 * render function turning completed results into the paper-style
 * table. The sweep runner executes the union of all requested specs
 * (shared cells are deduplicated, so e.g. Figures 5 and 6 reuse the
 * same runs); rendering never triggers simulation.
 */

#ifndef TLSIM_BENCH_REPRO_EXPERIMENTS_HH
#define TLSIM_BENCH_REPRO_EXPERIMENTS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "harness/sweep/runspec.hh"

namespace tlsim
{
namespace repro
{

/**
 * Baseline machine + budgets shared by every run of one sweep: the
 * paper's default machine at paper-scale budgets, reduced when
 * TLSIM_FAST=1 is set. Each experiment stamps its own design names
 * onto copies of this base.
 */
harness::SystemConfig defaultRunConfig();

/** Resolves one (design, benchmark) cell to its completed result. */
using ResultLookup = std::function<const harness::RunResult &(
    harness::DesignKind, const std::string &)>;

/** One reproducible table/figure of the paper's evaluation. */
struct Experiment
{
    /** Filter name, e.g. "table6" or "fig5". */
    const char *name;
    /** One-line description shown by --list. */
    const char *title;
    /** Every run this experiment needs, on the given base machine. */
    std::vector<harness::sweep::RunSpec> (*specs)(
        const harness::SystemConfig &);
    /** Print the paper-style table from completed results. */
    void (*render)(std::ostream &, const ResultLookup &);
};

/** All registered experiments, in paper order. */
const std::vector<Experiment> &experiments();

/** Look an experiment up by name; nullptr if unknown. */
const Experiment *findExperiment(const std::string &name);

} // namespace repro
} // namespace tlsim

#endif // TLSIM_BENCH_REPRO_EXPERIMENTS_HH
