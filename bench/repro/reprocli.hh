/**
 * @file
 * Command-line front end shared by tlsim_repro and the per-table
 * bench binaries.
 *
 * reproMain() implements the full CLI (experiment selection, worker
 * count, result-cache control, merged stats export); experimentMain()
 * is the same program pinned to a single experiment, which is all a
 * bench_table6_* style binary is.
 */

#ifndef TLSIM_BENCH_REPRO_REPROCLI_HH
#define TLSIM_BENCH_REPRO_REPROCLI_HH

namespace tlsim
{
namespace repro
{

/**
 * Entry point of the tlsim_repro binary.
 *
 * Usage: tlsim_repro [options]
 *   --list              print the experiments and exit
 *   --filter a,b        run only the named experiments (default all)
 *   --jobs N            worker threads (default: hardware threads)
 *   --cache-dir DIR     result-cache directory
 *                       (default $TLSIM_CACHE_DIR or
 *                       tlsim_result_cache)
 *   --no-cache          disable result memoization
 *   --stats-json FILE   merged per-run stats JSON, in spec order
 *   --config FILE       load the machine config (JSON)
 *   --dump-config       print the effective config JSON and exit
 *   --cores N           CMP cores sharing the L2 (default 1)
 *   --warm N            timed-warmup instructions per run
 *   --measure N         measured instructions per run
 *   --funcwarm N        functional-warmup instructions per run
 *   --quiet             suppress per-run progress on stderr
 *   --debug-flags F,F   gem5-style debug output (serial runs)
 *   --trace-out FILE    Chrome trace (forces --jobs 1)
 *
 * @return Process exit code.
 */
int reproMain(int argc, char **argv);

/** reproMain() pinned to one experiment (e.g. "table6"). */
int experimentMain(const char *experiment_name, int argc, char **argv);

} // namespace repro
} // namespace tlsim

#endif // TLSIM_BENCH_REPRO_REPROCLI_HH
