/**
 * @file
 * Reference values transcribed from the paper's tables and figures,
 * used by every bench to print paper-vs-measured comparisons.
 */

#ifndef TLSIM_BENCH_PAPERDATA_HH
#define TLSIM_BENCH_PAPERDATA_HH

#include <string>
#include <vector>

namespace paperdata
{

/** Benchmark order used throughout the paper. */
inline const std::vector<std::string> benchmarks = {
    "bzip", "gcc", "mcf", "perl", "equake", "swim",
    "applu", "lucas", "apache", "zeus", "sjbb", "oltp",
};

/** One row of paper Table 6. */
struct Table6Row
{
    const char *bench;
    double totalL2Requests; // absolute count over the paper's run
    double tlcMissPer1k;
    double dnucaMissPer1k;
    double dnucaCloseHitPct;
    double dnucaPromotesPerInsert;
    double tlcPredictablePct;
    double dnucaPredictablePct;
};

inline const std::vector<Table6Row> table6 = {
    {"bzip", 4.8e6, 0.051, 0.052, 81.0, 64.0, 92.0, 56.0},
    {"gcc", 3.8e7, 0.068, 0.070, 99.0, 610.0, 99.0, 62.0},
    {"mcf", 5.5e7, 0.019, 0.019, 48.0, 12000.0, 82.0, 24.0},
    {"perl", 2.6e6, 0.028, 0.028, 97.0, 9.7, 96.0, 90.0},
    {"equake", 6.2e6, 6.8, 5.2, 16.0, 0.55, 90.0, 38.0},
    {"swim", 2.4e7, 40.0, 38.0, 0.7, 0.15, 98.0, 39.0},
    {"applu", 9.0e6, 16.0, 16.0, 1.0, 0.06, 98.0, 38.0},
    {"lucas", 7.8e6, 13.0, 12.0, 7.2, 0.15, 99.0, 49.0},
    {"apache", 1.5e7, 4.8, 3.8, 67.0, 3.7, 98.0, 61.0},
    {"zeus", 1.4e7, 6.4, 4.8, 60.0, 2.5, 97.0, 57.0},
    {"sjbb", 7.1e6, 2.3, 2.3, 58.0, 1.9, 93.0, 59.0},
    {"oltp", 3.3e6, 0.93, 0.79, 89.0, 13.0, 98.0, 77.0},
};

/** Paper instruction/transaction budgets: L2 requests per 1K instr.
 *  SPEC runs executed 500M instructions; commercial runs are
 *  approximated with the same normalization used in the text. */
inline double
table6RequestsPer1k(const Table6Row &row)
{
    // SPEC rows executed 500M instructions (Table 4).
    return row.totalL2Requests / 500e6 * 1000.0;
}

/** One row of paper Table 9. */
struct Table9Row
{
    const char *bench;
    double dnucaBanksPerRequest;
    double tlcBanksPerRequest;
    double dnucaNetworkPowerMw;
    double tlcNetworkPowerMw;
};

inline const std::vector<Table9Row> table9 = {
    {"bzip", 2.3, 1.0, 150.0, 56.0},
    {"gcc", 2.0, 1.0, 150.0, 100.0},
    {"mcf", 2.6, 1.0, 350.0, 150.0},
    {"perl", 2.0, 1.0, 63.0, 36.0},
    {"equake", 2.5, 1.0, 87.0, 23.0},
    {"swim", 2.5, 1.0, 190.0, 56.0},
    {"applu", 2.5, 1.0, 110.0, 34.0},
    {"lucas", 2.5, 1.0, 57.0, 17.0},
    {"apache", 2.4, 1.0, 200.0, 67.0},
    {"zeus", 2.4, 1.0, 170.0, 53.0},
    {"sjbb", 2.4, 1.0, 130.0, 43.0},
    {"oltp", 2.1, 1.0, 220.0, 90.0},
};

/** Paper Table 7: consumed substrate area [mm^2]. */
struct Table7Row
{
    const char *design;
    double storage;
    double channel;
    double controller;
    double total;
};

inline const std::vector<Table7Row> table7 = {
    {"DNUCA", 92.0, 17.0, 1.1, 110.0},
    {"TLC", 77.0, 3.1, 10.0, 91.0},
};

/** Paper Table 8: communication network circuit totals. */
struct Table8Row
{
    const char *design;
    double transistors;
    double gateWidthLambda;
};

inline const std::vector<Table8Row> table8 = {
    {"DNUCA", 1.2e7, 440e6},
    {"TLC", 1.9e5, 20e6},
};

/** Paper Table 2: design parameters. */
struct Table2Row
{
    const char *design;
    int banks;
    int banksPerBlock;
    const char *bankSize;
    int linesPerPair; // 0 for NUCA designs
    int totalLines;
    int latencyLo;
    int latencyHi;
    int bankAccess;
};

inline const std::vector<Table2Row> table2 = {
    {"TLC", 32, 1, "512 KB", 128, 2048, 10, 16, 8},
    {"TLCopt1000", 16, 2, "1 MB", 126, 1008, 12, 13, 10},
    {"TLCopt500", 16, 4, "1 MB", 64, 512, 12, 12, 10},
    {"TLCopt350", 16, 8, "1 MB", 44, 352, 12, 12, 10},
    {"SNUCA2", 32, 1, "512 KB", 0, 0, 9, 32, 8},
    {"DNUCA", 256, 1, "64 KB", 0, 0, 3, 47, 3},
};

/**
 * Figure 5 (read off the plot, approximate): normalized execution
 * time vs SNUCA2.
 */
struct Fig5Row
{
    const char *bench;
    double dnuca;
    double tlc;
};

inline const std::vector<Fig5Row> fig5 = {
    {"bzip", 0.93, 0.95},   {"gcc", 0.87, 0.90},
    {"mcf", 0.85, 0.80},    {"perl", 0.95, 0.96},
    {"equake", 0.93, 1.02}, {"swim", 1.00, 0.99},
    {"applu", 1.00, 1.00},  {"lucas", 1.00, 1.00},
    {"apache", 0.89, 0.91}, {"zeus", 0.90, 0.92},
    {"sjbb", 0.92, 0.93},   {"oltp", 0.91, 0.93},
};

/** Figure 6 (read off the plot): mean lookup latency [cycles]. */
struct Fig6Row
{
    const char *bench;
    double dnuca;
    double tlc;
};

inline const std::vector<Fig6Row> fig6 = {
    {"bzip", 12.0, 13.0},  {"gcc", 10.0, 13.0},
    {"mcf", 22.0, 14.0},   {"perl", 10.0, 13.0},
    {"equake", 30.0, 13.0}, {"swim", 35.0, 13.5},
    {"applu", 33.0, 13.0}, {"lucas", 30.0, 13.0},
    {"apache", 15.0, 13.0}, {"zeus", 16.0, 13.0},
    {"sjbb", 16.0, 13.0},  {"oltp", 13.0, 13.0},
};

} // namespace paperdata

#endif // TLSIM_BENCH_PAPERDATA_HH
