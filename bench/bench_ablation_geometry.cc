/**
 * @file
 * Ablation: transmission-line geometry sensitivity (DESIGN.md #4).
 * Sweeps conductor width around the Table 1 design points and reports
 * impedance, attenuation, signalling energy, and whether the paper's
 * signal-integrity requirements still hold — showing why the paper
 * widens longer lines.
 */

#include <iostream>

#include "phys/fieldsolver.hh"
#include "phys/pulse.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;
using namespace tlsim::phys;

int
main()
{
    const Technology &tech = tech45();
    FieldSolver solver(tech);
    PulseSimulator pulses(tech);

    TextTable table("Ablation: line width vs signal integrity "
                    "(1.3 cm stripline, H=1.75 um, T=3 um)");
    table.setHeader({"W=S [um]", "Z0 [Ohm]", "R*l/2Z0 [Np]",
                     "peak [%Vdd]", "width [%cycle]", "E/bit [pJ]",
                     "passes"});

    const double length = 1.3e-2;
    for (double um : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0}) {
        WireGeometry geom{um * 1e-6, um * 1e-6, 1.75e-6, 3.0e-6};
        LineParams params = solver.extract(geom);
        PulseResult pulse = pulses.simulate(geom, length);
        double attenuation =
            params.resistance * length / (2.0 * params.z0());
        double energy = tech.cycleTime() * tech.vdd * tech.vdd /
                        (2.0 * params.z0());
        table.addRow({TextTable::num(um, 1),
                      TextTable::num(params.z0(), 1),
                      TextTable::num(attenuation, 2),
                      TextTable::num(100.0 * pulse.peakAmplitude, 1),
                      TextTable::num(100.0 * pulse.pulseWidth /
                                         tech.cycleTime(),
                                     1),
                      TextTable::num(energy / 1e-12, 2),
                      pulse.passes() ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\nExpected: narrow lines fail the 75%-amplitude "
                 "requirement over 1.3 cm; the paper's 3 um choice "
                 "passes with margin.\n";
    return 0;
}
