/**
 * @file
 * Ablation: end-to-end ECC retries under transmission-line bit errors
 * (paper Section 4). Sweeps the per-response detected-error rate and
 * shows that even pessimistic error rates cost almost no performance
 * — the justification for repairing residual faults with ECC instead
 * of heavier signalling schemes.
 */

#include <iostream>

#include "harness/system.hh"
#include "mem/dram.hh"
#include "sim/table.hh"
#include "tlc/tlccache.hh"
#include "workload/generator.hh"

using namespace tlsim;

namespace
{

struct Result
{
    double retriesPer1kLookups;
    double meanLookup;
    double ipc;
};

Result
run(double error_rate, const workload::BenchmarkProfile &profile)
{
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    tlc::TlcConfig cfg = tlc::baseTlc();
    cfg.lineErrorRate = error_rate;
    tlc::TlcCache cache(eq, &root, dram, phys::tech45(), cfg);
    mem::L1Cache l1i("l1i", eq, &root, cache, 64 * 1024, 2, 3, 4);
    mem::L1Cache l1d("l1d", eq, &root, cache, 64 * 1024, 2, 3, 8);
    cpu::CoreConfig core_cfg;
    core_cfg.fetchQuanta = profile.ilpQuanta;
    cpu::OoOCore core(eq, &root, l1i, l1d, core_cfg);

    workload::TraceGenerator gen(profile, 0);
    for (std::uint64_t i = 0; i < 30'000'000;) {
        auto rec = gen.next();
        i += rec.gap + (rec.isIFetch ? 0 : 1);
        if (rec.isIFetch) {
            l1i.accessFunctional(rec.blockAddr,
                                 mem::AccessType::InstFetch);
        } else {
            l1d.accessFunctional(rec.blockAddr, rec.type);
        }
    }
    root.resetStats();
    cache.beginMeasurement();
    std::uint64_t cycles = core.run(gen, 2'000'000);

    Result result;
    double lookups = std::max(
        1.0, static_cast<double>(cache.lookupLatency.count()));
    result.retriesPer1kLookups =
        1000.0 * cache.eccRetries.value() / lookups;
    result.meanLookup = cache.lookupLatency.mean();
    result.ipc = 2'000'000.0 / static_cast<double>(cycles);
    return result;
}

} // namespace

int
main()
{
    const auto &profile = workload::profileByName("gcc");

    TextTable table("Ablation: end-to-end ECC retry rate (gcc, base "
                    "TLC)");
    table.setHeader({"detected error rate", "retries/1K lookups",
                     "mean lookup [cyc]", "IPC", "IPC loss [%]"});

    double base_ipc = 0.0;
    for (double rate : {0.0, 1e-4, 1e-3, 1e-2, 5e-2}) {
        std::cerr << "  error rate " << rate << "...\n";
        Result r = run(rate, profile);
        if (base_ipc == 0.0)
            base_ipc = r.ipc;
        std::ostringstream os;
        os.precision(0);
        os << std::scientific << rate;
        table.addRow({rate == 0.0 ? "0" : os.str(),
                      TextTable::num(r.retriesPer1kLookups, 2),
                      TextTable::num(r.meanLookup, 2),
                      TextTable::num(r.ipc, 3),
                      TextTable::num(
                          100.0 * (1.0 - r.ipc / base_ipc), 2)});
    }
    table.print(std::cout);
    std::cout << "\nExpected: even a 1e-2 detected-error rate costs "
                 "well under 1% IPC — ECC repair is effectively free, "
                 "as the paper argues.\n";
    return 0;
}
