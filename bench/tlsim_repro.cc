/**
 * @file
 * tlsim_repro: regenerate every simulation-driven table and figure of
 * the paper's evaluation from one binary, in parallel, with result
 * memoization. See docs/REPRODUCING.md and `tlsim_repro --help`.
 */

#include "repro/reprocli.hh"

int
main(int argc, char **argv)
{
    return tlsim::repro::reproMain(argc, argv);
}
