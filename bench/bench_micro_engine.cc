/**
 * @file
 * Google-benchmark microbenchmarks of the simulation engine itself:
 * event queue, tag arrays, bank-set search, FFT, and end-to-end
 * simulated instruction throughput.
 */

#include <benchmark/benchmark.h>

#include "harness/system.hh"
#include "mem/setassoc.hh"
#include "nuca/bankset.hh"
#include "phys/fft.hh"
#include "sim/eventq.hh"
#include "sim/rng.hh"
#include "workload/generator.hh"

using namespace tlsim;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleFunc(static_cast<Tick>((i * 37) % 500 + 1),
                            [&fired]() { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_SetAssocLookup(benchmark::State &state)
{
    mem::SetAssocArray array(2048, 4);
    Rng rng(1);
    std::uint64_t counter = 0;
    for (int i = 0; i < 8192; ++i)
        array.insert(rng.below(1 << 16), ++counter, false);
    for (auto _ : state) {
        auto way = array.lookup(rng.below(1 << 16));
        benchmark::DoNotOptimize(way);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocLookup);

static void
BM_BankSetSearch(benchmark::State &state)
{
    nuca::BankSetArray array(nuca::BankSetConfig{});
    Rng rng(2);
    std::uint64_t counter = 0;
    for (int i = 0; i < 100000; ++i)
        array.insertAtTail(rng.below(1 << 18), ++counter, false);
    for (auto _ : state) {
        auto loc = array.lookup(rng.below(1 << 18));
        benchmark::DoNotOptimize(loc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankSetSearch);

static void
BM_Fft4096(benchmark::State &state)
{
    Rng rng(3);
    std::vector<std::complex<double>> data(4096);
    for (auto &x : data)
        x = {rng.real(), 0.0};
    for (auto _ : state) {
        auto copy = data;
        phys::fft(copy);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_Fft4096);

static void
BM_TraceGeneration(benchmark::State &state)
{
    workload::TraceGenerator gen(workload::profileByName("gcc"), 0);
    for (auto _ : state) {
        auto rec = gen.next();
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

static void
BM_FullSystemSimulation(benchmark::State &state)
{
    // Simulated instructions per wall-clock second, end to end.
    harness::System system(harness::DesignKind::TlcBase);
    workload::TraceGenerator gen(workload::profileByName("gcc"), 0);
    system.functionalWarm(gen, 2'000'000);
    for (auto _ : state)
        system.core().run(gen, 100'000);
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_FullSystemSimulation);

static void
BM_FunctionalWarmRate(benchmark::State &state)
{
    harness::System system(harness::DesignKind::Dnuca);
    workload::TraceGenerator gen(workload::profileByName("mcf"), 0);
    for (auto _ : state)
        system.functionalWarm(gen, 100'000);
    state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_FunctionalWarmRate);

BENCHMARK_MAIN();
