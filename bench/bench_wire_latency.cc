/**
 * @file
 * Reproduces the paper's headline wire-latency claim (Section 1 /
 * Section 3): on-chip transmission lines beat conventional RC wires
 * by a large factor for global distances — "up to a factor of 30"
 * against the wires conventional designs would use — while the
 * advantage vanishes below a few millimetres.
 */

#include <iostream>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/rcwire.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;
using namespace tlsim::phys;

int
main()
{
    const Technology &tech = tech45();
    RcWireModel repeated(tech, conventionalGlobalWire());
    FieldSolver solver(tech);

    TextTable table("Wire latency: transmission line vs conventional "
                    "RC (45 nm, 10 GHz)");
    table.setHeader({"Length [mm]", "TL flight [ps]",
                     "repeated RC [ps]", "unrepeated RC [ps]",
                     "TL speedup (rep)", "TL speedup (unrep)"});

    for (double mm : {0.5, 1.0, 2.0, 5.0, 10.0, 13.0, 20.0}) {
        double length = mm * 1e-3;
        const auto &spec = specForLength(length);
        LineParams params = solver.extract(spec.geometry);
        double tl_ps = length / params.velocity() / 1e-12;
        double rep_ps = repeated.delay(length) / 1e-12;
        double unrep_ps = repeated.unrepeatedDelay(length) / 1e-12;
        table.addRow({TextTable::num(mm, 1), TextTable::num(tl_ps, 1),
                      TextTable::num(rep_ps, 1),
                      TextTable::num(unrep_ps, 1),
                      TextTable::num(rep_ps / tl_ps, 1) + "x",
                      TextTable::num(unrep_ps / tl_ps, 1) + "x"});
    }
    table.print(std::cout);

    double die = 2e-2;
    double cycles = repeated.delay(die) / tech.cycleTime();
    std::cout << "\nCrossing a 2 cm die on repeated RC wire: "
              << TextTable::num(cycles, 1)
              << " cycles (paper premise: 25+)\n";
    return 0;
}
