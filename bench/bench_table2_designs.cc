/**
 * @file
 * Reproduces paper Table 2: the design parameters of the TLC family
 * and the NUCA baselines, with the uncontended latency ranges and
 * bank access times computed from the physical models (floorplan,
 * transmission lines, mesh hops, CACTI-lite banks).
 */

#include <iostream>
#include <memory>

#include "paperdata.hh"
#include "harness/system.hh"
#include "mem/dram.hh"
#include "nuca/dnuca.hh"
#include "nuca/snuca.hh"
#include "phys/technology.hh"
#include "sim/table.hh"
#include "tlc/tlccache.hh"

using namespace tlsim;

int
main()
{
    EventQueue eq;
    stats::StatGroup root("root");
    mem::Dram dram(eq, &root);
    const auto &tech = phys::tech45();

    TextTable table("Table 2: Design Parameters (measured (paper))");
    table.setHeader({"Design", "Banks", "Banks/Block", "Bank Size",
                     "Lines/Pair", "Total Lines",
                     "Uncontended Latency", "Bank Access"});

    auto row = [&](const std::string &name, int banks, int bpb,
                   const char *size, int lpp, int total,
                   std::pair<Cycles, Cycles> range, int access) {
        const paperdata::Table2Row *paper = nullptr;
        for (const auto &r : paperdata::table2) {
            if (name == r.design)
                paper = &r;
        }
        std::string lat =
            std::to_string(range.first) + "-" +
            std::to_string(range.second);
        if (paper) {
            lat += " (" + std::to_string(paper->latencyLo) + "-" +
                   std::to_string(paper->latencyHi) + ")";
        }
        std::string acc = std::to_string(access);
        if (paper)
            acc += " (" + std::to_string(paper->bankAccess) + ")";
        table.addRow({name, std::to_string(banks),
                      std::to_string(bpb), size,
                      lpp ? std::to_string(lpp) : "n/a",
                      total ? std::to_string(total) : "n/a", lat, acc});
    };

    for (const auto &cfg : {tlc::baseTlc(), tlc::tlcOpt1000(),
                            tlc::tlcOpt500(), tlc::tlcOpt350()}) {
        tlc::TlcCache cache(eq, &root, dram, tech, cfg);
        row(cfg.name, cfg.banks, cfg.banksPerBlock,
            cfg.bankBytes == 512 * 1024 ? "512 KB" : "1 MB",
            cfg.linesPerPair, cfg.totalLines(), cache.latencyRange(),
            cache.bankAccessCycles());
    }
    {
        nuca::SnucaCache cache(eq, &root, dram, tech);
        row("SNUCA2", 32, 1, "512 KB", 0, 0, cache.latencyRange(),
            cache.bankAccessCycles());
    }
    {
        nuca::DnucaCache cache(eq, &root, dram, tech);
        row("DNUCA", 256, 1, "64 KB", 0, 0, cache.latencyRange(),
            cache.bankAccessCycles());
    }

    table.print(std::cout);
    return 0;
}
