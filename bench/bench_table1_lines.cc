/**
 * @file
 * Reproduces paper Table 1 / Figure 3: the three transmission-line
 * design points, their extracted electrical parameters, and the
 * HSPICE-style signal-integrity validation (>= 75% Vdd amplitude,
 * >= 40% cycle pulse width at 10 GHz).
 */

#include <iostream>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/pulse.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;
using namespace tlsim::phys;

int
main()
{
    const Technology &tech = tech45();
    FieldSolver solver(tech);
    PulseSimulator pulses(tech);

    TextTable table("Table 1: Transmission line design points "
                    "(dimensions from the paper; electricals derived)");
    table.setHeader({"Length [cm]", "W [um]", "S [um]", "H [um]",
                     "T [um]", "Z0 [Ohm]", "v [mm/ps]", "flight [ps]",
                     "peak [%Vdd]", "width [%cycle]", "passes"});

    for (const auto &spec : paperTable1Lines()) {
        LineParams params = solver.extract(spec.geometry);
        PulseResult pulse = pulses.simulate(spec.geometry, spec.length);
        table.addRow({
            TextTable::num(spec.length * 100.0, 1),
            TextTable::num(spec.geometry.width * 1e6, 1),
            TextTable::num(spec.geometry.spacing * 1e6, 1),
            TextTable::num(spec.geometry.height * 1e6, 2),
            TextTable::num(spec.geometry.thickness * 1e6, 1),
            TextTable::num(params.z0(), 1),
            TextTable::num(params.velocity() * 1e-12 * 1e3, 4),
            TextTable::num(pulse.delay / 1e-12, 1),
            TextTable::num(100.0 * pulse.peakAmplitude, 1),
            TextTable::num(100.0 * pulse.pulseWidth /
                               tech.cycleTime(),
                           1),
            pulse.passes() ? "yes" : "NO",
        });
    }
    table.print(std::cout);

    std::cout << "\nPaper requirements: amplitude >= 75% Vdd, pulse "
                 "width >= 40% of the cycle.\n";
    return 0;
}
