/**
 * @file
 * Reproduces paper Figure 6: mean L2 lookup latency of DNUCA and the
 * base TLC across the 12 benchmarks — the consistency argument.
 */

#include <algorithm>
#include <iostream>

#include "benchcommon.hh"
#include "paperdata.hh"
#include "sim/table.hh"

using namespace tlsim;
using harness::DesignKind;

int
main(int argc, char **argv)
{
    benchcommon::initObservability(argc, argv);
    TextTable table("Figure 6: Mean Cache Lookup Latency [cycles] "
                    "(measured (paper, read off plot))");
    table.setHeader({"Bench", "DNUCA", "TLC"});

    double tlc_lo = 1e9, tlc_hi = 0.0, dnuca_lo = 1e9, dnuca_hi = 0.0;
    for (const auto &row : paperdata::fig6) {
        const auto &dnuca = benchcommon::cachedRun(DesignKind::Dnuca,
                                                   row.bench);
        const auto &tlc = benchcommon::cachedRun(DesignKind::TlcBase,
                                                 row.bench);
        table.addRow({
            row.bench,
            TextTable::num(dnuca.meanLookupLatency, 1) + " (" +
                TextTable::num(row.dnuca, 0) + ")",
            TextTable::num(tlc.meanLookupLatency, 1) + " (" +
                TextTable::num(row.tlc, 0) + ")",
        });
        tlc_lo = std::min(tlc_lo, tlc.meanLookupLatency);
        tlc_hi = std::max(tlc_hi, tlc.meanLookupLatency);
        dnuca_lo = std::min(dnuca_lo, dnuca.meanLookupLatency);
        dnuca_hi = std::max(dnuca_hi, dnuca.meanLookupLatency);
    }
    table.print(std::cout);

    std::cout << "\nTLC spread: " << TextTable::num(tlc_lo, 1) << "-"
              << TextTable::num(tlc_hi, 1)
              << " cycles (paper: ~13 flat); DNUCA spread: "
              << TextTable::num(dnuca_lo, 1) << "-"
              << TextTable::num(dnuca_hi, 1)
              << " cycles (paper: ~10-35).\n";
    return 0;
}
