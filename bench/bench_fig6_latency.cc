/**
 * @file
 * Reproduces paper Figure 6: mean L2 lookup latency of DNUCA and the
 * base TLC across the 12 benchmarks — the consistency argument.
 *
 * Thin wrapper over the sweep runner: equivalent to
 * `tlsim_repro --filter fig6`, and accepts the same options.
 */

#include "repro/reprocli.hh"

int
main(int argc, char **argv)
{
    return tlsim::repro::experimentMain("fig6", argc, argv);
}
