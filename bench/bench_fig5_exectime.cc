/**
 * @file
 * Reproduces paper Figure 5: execution time of DNUCA and the base
 * TLC, normalized to SNUCA2, across the 12 benchmarks.
 */

#include <iostream>

#include "benchcommon.hh"
#include "paperdata.hh"
#include "sim/table.hh"

using namespace tlsim;
using harness::DesignKind;

int
main(int argc, char **argv)
{
    benchcommon::initObservability(argc, argv);
    TextTable table("Figure 5: Normalized Execution Time vs SNUCA2 "
                    "(measured (paper, read off plot))");
    table.setHeader({"Bench", "DNUCA", "TLC"});

    for (const auto &row : paperdata::fig5) {
        const auto &snuca = benchcommon::cachedRun(DesignKind::Snuca2,
                                                   row.bench);
        const auto &dnuca = benchcommon::cachedRun(DesignKind::Dnuca,
                                                   row.bench);
        const auto &tlc = benchcommon::cachedRun(DesignKind::TlcBase,
                                                 row.bench);
        double base = static_cast<double>(snuca.cycles);
        table.addRow({
            row.bench,
            TextTable::num(dnuca.cycles / base, 3) + " (" +
                TextTable::num(row.dnuca, 2) + ")",
            TextTable::num(tlc.cycles / base, 3) + " (" +
                TextTable::num(row.tlc, 2) + ")",
        });
    }
    table.print(std::cout);
    std::cout << "\nValues < 1.0 improve on SNUCA2. Expected shape: "
                 "both designs win on SPECint/commercial; neither "
                 "moves the streaming SPECfp codes; TLC loses "
                 "slightly on equake (LRU vs frequency placement).\n";
    return 0;
}
