/**
 * @file
 * Reproduces paper Figure 5: execution time of DNUCA and the base
 * TLC, normalized to SNUCA2, across the 12 benchmarks.
 *
 * Thin wrapper over the sweep runner: equivalent to
 * `tlsim_repro --filter fig5`, and accepts the same options.
 */

#include "repro/reprocli.hh"

int
main(int argc, char **argv)
{
    return tlsim::repro::experimentMain("fig5", argc, argv);
}
