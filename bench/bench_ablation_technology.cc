/**
 * @file
 * Ablation: technology scaling (the paper's Section 1/2 premise).
 * Sweeps the clock from 2 to 16 GHz at fixed geometry and reports how
 * many cycles a 1.3 cm transmission line vs a repeated RC wire costs:
 * the TL's absolute flight time is fixed by the dielectric, so its
 * *cycle* cost stays ~1 while RC wires blow up — the wire-delay wall
 * that motivates both NUCA and TLC.
 */

#include <cmath>
#include <iostream>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/rcwire.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;
using namespace tlsim::phys;

int
main()
{
    TextTable table("Ablation: clock scaling at 45 nm (1.3 cm global "
                    "signal)");
    table.setHeader({"Clock [GHz]", "cycle [ps]", "TL [cycles]",
                     "repeated RC [cycles]", "2cm die crossing [cyc]",
                     "TL advantage"});

    for (double ghz : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0}) {
        Technology tech = tech45();
        tech.clockFreq = ghz * 1e9;

        FieldSolver solver(tech);
        const auto &spec = specForLength(1.3e-2);
        LineParams params = solver.extract(spec.geometry);
        double tl_cycles =
            std::ceil(1.3e-2 / params.velocity() / tech.cycleTime());

        RcWireModel wire(tech, conventionalGlobalWire());
        double rc_cycles =
            std::ceil(wire.delay(1.3e-2) / tech.cycleTime());
        double die_cycles = wire.delay(2e-2) / tech.cycleTime();

        table.addRow({TextTable::num(ghz, 0),
                      TextTable::num(1e12 / (ghz * 1e9), 0),
                      TextTable::num(tl_cycles, 0),
                      TextTable::num(rc_cycles, 0),
                      TextTable::num(die_cycles, 1),
                      TextTable::num(rc_cycles / tl_cycles, 1) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nExpected: at the paper's 10 GHz design point a "
                 "1.3 cm line is 1 cycle by transmission line vs "
                 "~12 by repeated RC; the gap widens with clock.\n";
    return 0;
}
