/**
 * @file
 * Ablation: transmission-line signalling schemes (paper Section 3/4).
 * Quantifies why TLC uses single-ended voltage-mode drivers: for a
 * network whose links are busy < 2% of cycles, the static bias power
 * of current-mode or carrier-based schemes swamps their dynamic
 * savings, and differential pairs would double the wire bill.
 */

#include <iostream>

#include "phys/drivers.hh"
#include "phys/technology.hh"
#include "sim/table.hh"
#include "tlc/config.hh"

using namespace tlsim;
using namespace tlsim::phys;

int
main()
{
    const Technology &tech = tech45();
    TransmissionLine line(tech, 1.1e-2);
    tlc::TlcConfig cfg = tlc::baseTlc();

    TextTable table("Ablation: signalling schemes for the base TLC "
                    "(2048 signals, 1.1 cm lines)");
    table.setHeader({"Scheme", "wires", "E/bit [pJ]",
                     "static/line [mW]", "network static [W]",
                     "network @1% util [W]", "noise margin",
                     "transistors"});

    const double util = 0.01;
    const double bit_rate = tech.clockFreq;
    for (DriverKind kind : allDriverKinds()) {
        DriverProfile profile = evaluateDriver(tech, line, kind);
        int signals = cfg.totalLines();
        double net_static = signals * profile.staticPower;
        double net_total =
            net_static + signals * util * bit_rate *
                             tech.activityFactor *
                             profile.dynamicEnergyPerBit;
        table.addRow({profile.name,
                      std::to_string(profile.wiresPerSignal *
                                     signals),
                      TextTable::num(profile.dynamicEnergyPerBit /
                                         1e-12,
                                     2),
                      TextTable::num(profile.staticPower * 1e3, 2),
                      TextTable::num(net_static, 2),
                      TextTable::num(net_total, 2),
                      TextTable::num(profile.noiseMargin, 1) + "x",
                      std::to_string(profile.transistors * signals)});
    }
    table.print(std::cout);
    std::cout << "\nExpected: voltage mode wins at low utilization — "
                 "the paper's Section 6.1 argument for rejecting "
                 "contemporary low-voltage drivers.\n";
    return 0;
}
