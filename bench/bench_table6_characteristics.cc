/**
 * @file
 * Reproduces paper Table 6: benchmark characteristics on the base TLC
 * and DNUCA designs — L2 requests, misses per 1K instructions, DNUCA
 * close-hit rate, promotes/inserts, and predictable-lookup rates.
 *
 * Thin wrapper over the sweep runner: equivalent to
 * `tlsim_repro --filter table6`, and accepts the same options.
 */

#include "repro/reprocli.hh"

int
main(int argc, char **argv)
{
    return tlsim::repro::experimentMain("table6", argc, argv);
}
