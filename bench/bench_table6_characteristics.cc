/**
 * @file
 * Reproduces paper Table 6: benchmark characteristics on the base TLC
 * and DNUCA designs — L2 requests, misses per 1K instructions, DNUCA
 * close-hit rate, promotes/inserts, and predictable-lookup rates.
 */

#include <iostream>

#include "benchcommon.hh"
#include "paperdata.hh"
#include "sim/table.hh"

using namespace tlsim;
using harness::DesignKind;

int
main(int argc, char **argv)
{
    benchcommon::initObservability(argc, argv);
    TextTable table("Table 6: Benchmark Characteristics "
                    "(paper -> measured)");
    table.setHeader({"Bench", "L2req/1K", "TLC miss/1K (paper)",
                     "DNUCA miss/1K (paper)", "close-hit% (paper)",
                     "promotes/insert (paper)", "TLC pred% (paper)",
                     "DNUCA pred% (paper)"});

    for (const auto &row : paperdata::table6) {
        const auto &tlc = benchcommon::cachedRun(DesignKind::TlcBase,
                                                 row.bench);
        const auto &dnuca = benchcommon::cachedRun(DesignKind::Dnuca,
                                                   row.bench);
        table.addRow({
            row.bench,
            TextTable::num(tlc.l2RequestsPer1k, 1) + " (" +
                TextTable::num(paperdata::table6RequestsPer1k(row), 1) +
                ")",
            TextTable::num(tlc.l2MissesPer1k, 3) + " (" +
                TextTable::num(row.tlcMissPer1k, 3) + ")",
            TextTable::num(dnuca.l2MissesPer1k, 3) + " (" +
                TextTable::num(row.dnucaMissPer1k, 3) + ")",
            TextTable::num(dnuca.closeHitPct, 1) + " (" +
                TextTable::num(row.dnucaCloseHitPct, 1) + ")",
            TextTable::num(dnuca.promotesPerInsert, 2) + " (" +
                TextTable::num(row.dnucaPromotesPerInsert, 2) + ")",
            TextTable::num(tlc.predictablePct, 0) + " (" +
                TextTable::num(row.tlcPredictablePct, 0) + ")",
            TextTable::num(dnuca.predictablePct, 0) + " (" +
                TextTable::num(row.dnucaPredictablePct, 0) + ")",
        });
    }

    table.print(std::cout);
    return 0;
}
