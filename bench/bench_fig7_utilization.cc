/**
 * @file
 * Reproduces paper Figure 7: average transmission-line link
 * utilization for the whole TLC family across the 12 benchmarks —
 * showing that even TLCopt350's 6x wire reduction leaves plenty of
 * headroom.
 */

#include <algorithm>
#include <iostream>

#include "benchcommon.hh"
#include "paperdata.hh"
#include "sim/table.hh"

using namespace tlsim;
using harness::DesignKind;

int
main(int argc, char **argv)
{
    benchcommon::initObservability(argc, argv);
    TextTable table("Figure 7: TLC Average Link Utilization [%]");
    table.setHeader({"Bench", "TLC", "TLCopt1000", "TLCopt500",
                     "TLCopt350"});

    double base_max = 0.0, opt350_max = 0.0;
    for (const auto &bench : paperdata::benchmarks) {
        std::vector<std::string> row{bench};
        for (DesignKind kind : harness::tlcFamily()) {
            const auto &result = benchcommon::cachedRun(kind, bench);
            row.push_back(
                TextTable::num(result.linkUtilizationPct, 2));
            if (kind == DesignKind::TlcBase) {
                base_max = std::max(base_max,
                                    result.linkUtilizationPct);
            }
            if (kind == DesignKind::TlcOpt350) {
                opt350_max = std::max(opt350_max,
                                      result.linkUtilizationPct);
            }
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nBase TLC max utilization: "
              << TextTable::num(base_max, 2)
              << "% (paper: never exceeds 2%); TLCopt350 max: "
              << TextTable::num(opt350_max, 2)
              << "% (paper: never surpasses 13%).\n";
    return 0;
}
