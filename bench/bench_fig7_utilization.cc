/**
 * @file
 * Reproduces paper Figure 7: average transmission-line link
 * utilization for the whole TLC family across the 12 benchmarks —
 * showing that even TLCopt350's 6x wire reduction leaves plenty of
 * headroom.
 *
 * Thin wrapper over the sweep runner: equivalent to
 * `tlsim_repro --filter fig7`, and accepts the same options.
 */

#include "repro/reprocli.hh"

int
main(int argc, char **argv)
{
    return tlsim::repro::experimentMain("fig7", argc, argv);
}
