/**
 * @file
 * Ablation: partial tag width (DESIGN.md #2). The paper uses 6 bits.
 * Narrower tags create more false search candidates in DNUCA and more
 * multiple-matches in the optimized TLCs; wider tags cost storage for
 * little gain.
 */

#include <iostream>

#include "harness/system.hh"
#include "mem/dram.hh"
#include "nuca/dnuca.hh"
#include "sim/table.hh"
#include "tlc/tlccache.hh"
#include "workload/generator.hh"

using namespace tlsim;

namespace
{

/** Functionally warm an L2 through L1 filters, then measure. */
template <typename MakeCache>
void
sweep(TextTable &table, const char *design, MakeCache make_cache)
{
    const auto &profile = workload::profileByName("gcc");
    for (int bits : {2, 4, 6, 8, 10}) {
        EventQueue eq;
        stats::StatGroup root("root");
        mem::Dram dram(eq, &root);
        auto cache = make_cache(eq, root, dram, bits);
        mem::L1Cache l1i("l1i", eq, &root, *cache, 64 * 1024, 2, 3, 4);
        mem::L1Cache l1d("l1d", eq, &root, *cache, 64 * 1024, 2, 3, 8);
        cpu::CoreConfig core_cfg;
        core_cfg.fetchQuanta = profile.ilpQuanta;
        cpu::OoOCore core(eq, &root, l1i, l1d, core_cfg);

        workload::TraceGenerator gen(profile, 0);
        for (std::uint64_t i = 0; i < 30'000'000;) {
            auto rec = gen.next();
            i += rec.gap + (rec.isIFetch ? 0 : 1);
            if (rec.isIFetch) {
                l1i.accessFunctional(rec.blockAddr,
                                     mem::AccessType::InstFetch);
            } else {
                l1d.accessFunctional(rec.blockAddr, rec.type);
            }
        }
        root.resetStats();
        cache->beginMeasurement();
        core.run(gen, 2'000'000);

        double lookups = std::max(
            1.0, static_cast<double>(cache->lookupLatency.count()));
        table.addRow(
            {design, std::to_string(bits),
             TextTable::num(cache->banksAccessed.mean(), 3),
             TextTable::num(cache->lookupLatency.mean(), 2),
             TextTable::num(100.0 *
                                cache->predictableLookups.value() /
                                lookups,
                            1)});
        std::cerr << "  " << design << " ptag=" << bits << " done\n";
    }
}

} // namespace

int
main()
{
    TextTable table("Ablation: partial tag width (gcc)");
    table.setHeader({"Design", "ptag bits", "banks/request",
                     "mean lookup [cyc]", "predictable %"});

    sweep(table, "DNUCA",
          [](EventQueue &eq, stats::StatGroup &root, mem::Dram &dram,
             int bits) {
              nuca::DnucaConfig cfg;
              cfg.bankSets.partialTagBits = bits;
              return std::make_unique<nuca::DnucaCache>(
                  eq, &root, dram, phys::tech45(), cfg);
          });
    sweep(table, "TLCopt500",
          [](EventQueue &eq, stats::StatGroup &root, mem::Dram &dram,
             int bits) {
              tlc::TlcConfig cfg = tlc::tlcOpt500();
              cfg.partialTagBits = bits;
              return std::make_unique<tlc::TlcCache>(
                  eq, &root, dram, phys::tech45(), cfg);
          });

    table.print(std::cout);
    std::cout << "\nExpected: banks/request falls as the partial tag "
                 "widens (fewer false candidates); 6 bits is already "
                 "near the knee — the paper's choice.\n";
    return 0;
}
