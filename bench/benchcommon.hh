/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 */

#ifndef TLSIM_BENCH_BENCHCOMMON_HH
#define TLSIM_BENCH_BENCHCOMMON_HH

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "harness/system.hh"
#include "sim/table.hh"
#include "sim/trace/options.hh"
#include "sim/trace/sampler.hh"
#include "workload/profile.hh"

namespace benchcommon
{

/**
 * On-disk cache of RunResults shared between bench binaries: several
 * tables/figures sweep identical (design, benchmark) configurations,
 * and every run is deterministic, so results can be reused. Delete
 * the cache file after changing simulator code.
 */
class RunCache
{
  public:
    RunCache()
    {
        const char *env = std::getenv("TLSIM_RUN_CACHE");
        path = env ? env : "tlsim_run_cache.txt";
        load();
    }

    const tlsim::harness::RunResult *
    find(const std::string &key) const
    {
        auto it = entries.find(key);
        return it == entries.end() ? nullptr : &it->second;
    }

    void
    store(const std::string &key,
          const tlsim::harness::RunResult &result)
    {
        entries[key] = result;
        std::ofstream out(path, std::ios::app);
        out << key << ' ' << result.design << ' ' << result.benchmark
            << ' ' << result.cycles << ' ' << result.instructions
            << ' ' << result.ipc << ' ' << result.l2RequestsPer1k
            << ' ' << result.l2MissesPer1k << ' '
            << result.meanLookupLatency << ' ' << result.predictablePct
            << ' ' << result.banksPerRequest << ' '
            << result.networkPowerMw << ' '
            << result.linkUtilizationPct << ' ' << result.closeHitPct
            << ' ' << result.promotesPerInsert << ' '
            << result.fastMissPct << ' ' << result.multiMatchPct
            << ' ' << result.queueWaitMean << ' ' << result.wireMean
            << ' ' << result.bankMean << ' ' << result.dramMean
            << '\n';
    }

  private:
    void
    load()
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            std::istringstream is(line);
            std::string key;
            tlsim::harness::RunResult r;
            if (is >> key >> r.design >> r.benchmark >> r.cycles >>
                r.instructions >> r.ipc >> r.l2RequestsPer1k >>
                r.l2MissesPer1k >> r.meanLookupLatency >>
                r.predictablePct >> r.banksPerRequest >>
                r.networkPowerMw >> r.linkUtilizationPct >>
                r.closeHitPct >> r.promotesPerInsert >>
                r.fastMissPct >> r.multiMatchPct >> r.queueWaitMean >>
                r.wireMean >> r.bankMean >> r.dramMean) {
                entries[key] = r;
            }
        }
    }

    std::string path;
    std::map<std::string, tlsim::harness::RunResult> entries;
};

/** Instruction budgets; honour TLSIM_FAST=1 for quick smoke runs. */
inline std::uint64_t
warmupInstructions()
{
    const char *fast = std::getenv("TLSIM_FAST");
    return (fast && fast[0] == '1') ? 2'000'000
                                    : tlsim::harness::defaultWarmup;
}

inline std::uint64_t
measureInstructions()
{
    const char *fast = std::getenv("TLSIM_FAST");
    return (fast && fast[0] == '1') ? 1'000'000
                                    : tlsim::harness::defaultMeasure;
}

inline std::uint64_t
functionalWarmupInstructions()
{
    const char *fast = std::getenv("TLSIM_FAST");
    return (fast && fast[0] == '1')
               ? 20'000'000
               : tlsim::harness::defaultFunctionalWarmup;
}

inline std::unique_ptr<tlsim::trace::Observability> &
observabilityStorage()
{
    static std::unique_ptr<tlsim::trace::Observability> obs;
    return obs;
}

/**
 * Initialise process-wide observability from argv; call first thing
 * in main so --debug-flags/--trace-out/... are stripped before any
 * positional-argument parsing.
 */
inline tlsim::trace::Observability &
initObservability(int &argc, char **argv)
{
    auto &storage = observabilityStorage();
    if (!storage) {
        storage =
            std::make_unique<tlsim::trace::Observability>(argc, argv);
    }
    return *storage;
}

/** Process-wide observability; environment-driven if main never
 * called initObservability. */
inline tlsim::trace::Observability &
observability()
{
    auto &storage = observabilityStorage();
    if (!storage)
        storage = std::make_unique<tlsim::trace::Observability>();
    return *storage;
}

/**
 * RunObserver that attaches the periodic stat sampler over the
 * measured phase and dumps final stats JSON, per the process-wide
 * observability options.
 */
inline tlsim::harness::RunObserver
makeRunObserver()
{
    auto sampler = std::make_shared<
        std::unique_ptr<tlsim::trace::StatSampler>>();
    tlsim::harness::RunObserver observer;
    observer.onMeasureBegin = [sampler](tlsim::harness::System &sys) {
        *sampler = observability().makeSampler(sys.eventQueue(),
                                               sys.root());
    };
    observer.onMeasureEnd = [sampler](tlsim::harness::System &sys) {
        sampler->reset();
        observability().dumpFinalStats(sys.root());
    };
    return observer;
}

/** Key for caching run results within one bench process. */
using RunKey = std::pair<tlsim::harness::DesignKind, std::string>;

/**
 * Run (or fetch the cached result of) one benchmark on one design.
 */
inline const tlsim::harness::RunResult &
cachedRun(tlsim::harness::DesignKind kind, const std::string &bench)
{
    static std::map<RunKey, tlsim::harness::RunResult> cache;
    static RunCache disk_cache;
    RunKey key{kind, bench};
    auto it = cache.find(key);
    if (it == cache.end()) {
        std::string disk_key = tlsim::harness::designName(kind) + "/" +
                               bench + "/" +
                               std::to_string(warmupInstructions()) +
                               "/" +
                               std::to_string(measureInstructions()) +
                               "/" +
                               std::to_string(
                                   functionalWarmupInstructions());
        if (const auto *hit = disk_cache.find(disk_key)) {
            it = cache.emplace(key, *hit).first;
            return it->second;
        }
        const auto &profile = tlsim::workload::profileByName(bench);
        std::cerr << "  running " << tlsim::harness::designName(kind)
                  << " / " << bench << "..." << std::endl;
        auto observer = makeRunObserver();
        auto result = tlsim::harness::runBenchmark(
            kind, profile, warmupInstructions(), measureInstructions(),
            0, functionalWarmupInstructions(), &observer);
        disk_cache.store(disk_key, result);
        it = cache.emplace(key, std::move(result)).first;
    }
    return it->second;
}

} // namespace benchcommon

#endif // TLSIM_BENCH_BENCHCOMMON_HH
