/**
 * @file
 * Performance regression harness: micro + end-to-end kernels.
 *
 * Measures the simulator's own speed (the ROADMAP's "runs as fast as
 * the hardware allows") and emits BENCH_kernel.json in the stable
 * tlsim-bench-v1 schema, seeding the repo's perf trajectory:
 *
 *   tlsim_bench --quick                       # CI-sized run
 *   tlsim_bench --compare baseline.json       # speedups vs a baseline
 *   tlsim_bench --validate BENCH_kernel.json  # schema check (CI gate)
 *
 * Kernels:
 *   eventq_throughput     schedule+dispatch rate through EventQueue
 *   eventq_churn          deschedule-heavy load (heap compaction path)
 *   pulse_sim_cold        one frequency-domain pulse sim, cold caches
 *   physcache_hot         memoized pulse lookups through PhysCache
 *   ddr_frfcfs            requests/s through the banked "ddr" memory
 *                         backend's FR-FCFS scheduling hot path
 *   pdes_window           cross-domain messages/s through the
 *                         partitioned executor's window barrier
 *   arena_churn           one-shot event churn through an
 *                         arena-backed queue (the worker domains'
 *                         allocation path; asserts the global
 *                         allocator was never touched)
 *   snuca_single_run      one fault-free SNUCA2 run at quickstart
 *                         budgets, honoring --domains — the kernel
 *                         the partitioned-execution speedup and the
 *                         serial determinism-overhead gate measure
 *   sweep_quickstart      the quickstart sweep, warm physics memo
 *   sweep_quickstart_memocold  same sweep with the memo cleared first
 *   telemetry_overhead    profiler-on / profiler-off wall ratio on the
 *                         eventq workload; --compare fails when the
 *                         enabled profiler costs more than 3%
 *
 * The sweep kernels run the same table6 spec list as `tlsim_repro
 * --filter table6` (fault-margin weighting on, so the per-pair pulse
 * simulations the memo cache exists for are actually on the path),
 * and assert memo-cold and memo-hot runs produce identical results.
 *
 * Comparison semantics: wall_s metrics speed up as baseline/current,
 * rate metrics as current/baseline, so "speedup 2.0" always means
 * "twice as fast".
 */

#include <sys/resource.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/sweep/sweep.hh"
#include "harness/system.hh"
#include "mem/ddr.hh"
#include "phys/geometry.hh"
#include "phys/physcache.hh"
#include "phys/pulse.hh"
#include "phys/technology.hh"
#include "repro/experiments.hh"
#include "sim/eventq.hh"
#include "sim/eventqstats.hh"
#include "sim/pdes/pdes.hh"
#include "sim/prof/prof.hh"
#include "workload/profile.hh"

namespace
{

using tlsim::Event;
using tlsim::EventQueue;
using tlsim::Tick;

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

long
peakRssBytes()
{
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    // ru_maxrss is kilobytes on Linux.
    return usage.ru_maxrss * 1024L;
}

/** One measured kernel result. */
struct Kernel
{
    std::string name;
    std::string metric; // "wall_s" or "..._per_sec"
    double value = 0.0;
    double wallS = 0.0;
};

/** Minimal JSON reader for --compare / --validate (objects, arrays,
 *  strings, numbers, true/false/null). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    } kind = Kind::Null;

    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    field(const std::string &key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos != text.size())
            throw std::runtime_error("trailing JSON content");
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            throw std::runtime_error("unexpected end of JSON");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "'");
        ++pos;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
        }
        case 't':
        case 'f': return parseBool();
        case 'n':
            if (text.compare(pos, 4, "null") != 0)
                throw std::runtime_error("bad JSON literal");
            pos += 4;
            return JsonValue{};
        default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                char esc = text[pos++];
                switch (esc) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                default: out += esc; break;
                }
            } else {
                out += c;
            }
        }
        if (pos >= text.size())
            throw std::runtime_error("unterminated JSON string");
        ++pos;
        return out;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text.compare(pos, 4, "true") == 0) {
            v.boolean = true;
            pos += 4;
        } else if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
        } else {
            throw std::runtime_error("bad JSON literal");
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        std::size_t end = pos;
        while (end < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[end])) ||
                std::strchr("+-.eE", text[end])))
            ++end;
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(text.substr(pos, end - pos));
        pos = end;
        return v;
    }

    const std::string &text;
    std::size_t pos = 0;
};

// ---------------------------------------------------------------- //
// Kernels                                                          //
// ---------------------------------------------------------------- //

/** Self-rescheduling typed event for the throughput kernel. */
class TickerEvent : public Event
{
  public:
    TickerEvent(EventQueue &eq, std::uint64_t limit)
        : eventq(eq), remaining(limit)
    {}

    void
    process() override
    {
        if (--remaining > 0)
            eventq.schedule(this, eventq.now() + 1);
    }

    const char *name() const override { return "TickerEvent"; }

  private:
    EventQueue &eventq;
    std::uint64_t remaining;
};

Kernel
benchEventqThroughput(bool quick)
{
    const std::uint64_t typed = quick ? 400'000 : 4'000'000;
    const std::uint64_t oneshots = quick ? 200'000 : 2'000'000;

    auto start = std::chrono::steady_clock::now();
    EventQueue eq;
    TickerEvent ticker(eq, typed);
    eq.schedule(&ticker, 1);
    std::uint64_t fired = 0;
    // Interleave pooled one-shots with the self-rescheduling typed
    // event: the dominant mix on the L1-miss path.
    for (std::uint64_t i = 0; i < oneshots; ++i) {
        eq.scheduleCallback(eq.now() + 2, [&fired](Tick) { ++fired; });
        eq.advanceTo(eq.now() + 1);
    }
    std::uint64_t processed = eq.run();
    double secs = wallSeconds(start);

    if (fired != oneshots)
        throw std::runtime_error("eventq_throughput lost callbacks");
    (void)processed;
    return Kernel{"eventq_throughput", "events_per_sec",
                  static_cast<double>(typed + oneshots) / secs, secs};
}

Kernel
benchEventqChurn(bool quick)
{
    const std::uint64_t rounds = quick ? 100'000 : 1'000'000;

    auto start = std::chrono::steady_clock::now();
    EventQueue eq;
    std::uint64_t fired = 0;
    // Retry-heavy pattern: schedule, squash, reschedule later — the
    // load that used to accumulate stale heap entries unboundedly.
    for (std::uint64_t i = 0; i < rounds; ++i) {
        Event *ev = eq.scheduleCallback(eq.now() + 100,
                                        [&fired](Tick) { ++fired; });
        eq.deschedule(ev);
        eq.scheduleCallback(eq.now() + 1, [&fired](Tick) { ++fired; });
        eq.advanceTo(eq.now() + 1);
        // Compaction keeps squashed entries bounded by 2x live.
        if (eq.heapSize() > 64 &&
            eq.staleCount() > 2 * (eq.size() + 1)) {
            throw std::runtime_error("eventq compaction ineffective");
        }
    }
    eq.run();
    double secs = wallSeconds(start);

    if (fired != rounds)
        throw std::runtime_error("eventq_churn lost callbacks");
    return Kernel{"eventq_churn", "events_per_sec",
                  static_cast<double>(2 * rounds) / secs, secs};
}

Kernel
benchPulseSimCold(bool quick)
{
    const int iters = quick ? 20 : 100;
    const auto &tech = tlsim::phys::tech45();
    const auto &lines = tlsim::phys::paperTable1Lines();

    auto start = std::chrono::steady_clock::now();
    double checksum = 0.0;
    for (int i = 0; i < iters; ++i) {
        // Fresh simulator per iteration: no per-instance r_ac table
        // reuse, so this tracks the true cold cost.
        tlsim::phys::PulseSimulator sim(tech);
        const auto &spec = lines[static_cast<std::size_t>(i) %
                                 lines.size()];
        auto pr = sim.simulate(spec.geometry, spec.length);
        checksum += pr.delay;
    }
    double secs = wallSeconds(start);

    if (!std::isfinite(checksum))
        throw std::runtime_error("pulse_sim_cold produced non-finite");
    return Kernel{"pulse_sim_cold", "sims_per_sec", iters / secs, secs};
}

Kernel
benchPhyscacheHot(bool quick)
{
    const std::uint64_t lookups = quick ? 200'000 : 2'000'000;
    const auto &tech = tlsim::phys::tech45();
    const auto &lines = tlsim::phys::paperTable1Lines();
    auto &cache = tlsim::phys::PhysCache::instance();

    // Warm the entries, then measure pure hit throughput.
    for (const auto &spec : lines)
        cache.pulse(tech, spec.geometry, spec.length);

    auto start = std::chrono::steady_clock::now();
    double checksum = 0.0;
    for (std::uint64_t i = 0; i < lookups; ++i) {
        const auto &spec = lines[i % lines.size()];
        checksum +=
            cache.pulse(tech, spec.geometry, spec.length).delay;
    }
    double secs = wallSeconds(start);

    if (!std::isfinite(checksum))
        throw std::runtime_error("physcache_hot produced non-finite");
    return Kernel{"physcache_hot", "lookups_per_sec", lookups / secs,
                  secs};
}

Kernel
benchDdrFrfcfs(bool quick)
{
    const std::uint64_t requests = quick ? 200'000 : 2'000'000;

    auto start = std::chrono::steady_clock::now();
    EventQueue eq;
    tlsim::stats::StatGroup root("bench");
    tlsim::mem::DdrBackend::Params params;
    params.tREFI = 2'000; // keep the refresh catch-up path hot
    tlsim::mem::DdrBackend dram(eq, &root, params);

    // Mixed locality: mostly-sequential streams (row hits) with
    // random jumps (row misses/conflicts) and 1-in-8 writebacks — the
    // FR-FCFS pick loop's realistic worst mix. Deterministic LCG so
    // every run measures the identical request stream.
    std::uint64_t lcg = 0x9e3779b97f4a7c15ULL;
    std::uint64_t issued_reads = 0, completed = 0;
    tlsim::Addr ptr = 0;
    for (std::uint64_t i = 0; i < requests; ++i) {
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        if ((lcg >> 60) != 0)
            ptr += 1; // sequential: same row per channel, mostly hits
        else
            ptr = (lcg >> 20) % 1'000'000; // jump: miss or conflict
        if ((i & 7) == 7) {
            dram.write(ptr, eq.now());
        } else {
            ++issued_reads;
            dram.read(ptr, eq.now(),
                      [&completed](Tick) { ++completed; });
        }
        // Drain in small batches so queue depth stays realistic
        // instead of accumulating the whole stream in the spill.
        if ((i & 31) == 31)
            eq.run();
    }
    eq.run();
    double secs = wallSeconds(start);

    if (completed != issued_reads)
        throw std::runtime_error("ddr_frfcfs lost read callbacks");
    if (dram.rowHits.value() == 0.0 || dram.rowConflicts.value() == 0.0)
        throw std::runtime_error("ddr_frfcfs address mix degenerate");
    return Kernel{"ddr_frfcfs", "reqs_per_sec",
                  static_cast<double>(requests) / secs, secs};
}

/**
 * Cross-domain message throughput through the partitioned executor:
 * two worker domains, each round delivering one message per worker
 * and receiving one record back, driven the way the cores drive the
 * master queue (advanceTo). Exercises the window barrier, the mailbox
 * staging, and the explicit-sequence key plumbing end to end.
 */
Kernel
benchPdesWindow(bool quick)
{
    const std::uint64_t rounds = quick ? 20'000 : 200'000;
    const int workers = 2;
    const Tick lookahead = 4;

    auto start = std::chrono::steady_clock::now();
    EventQueue eq;
    std::uint64_t replies = 0;
    std::uint64_t windows = 0;
    {
        tlsim::pdes::Executor exec(eq, workers, lookahead);
        for (std::uint64_t i = 0; i < rounds; ++i) {
            Tick t = eq.now() + lookahead;
            for (int w = 0; w < workers; ++w) {
                exec.postToWorker(w, t, [&exec, &replies, w](Tick) {
                    exec.postToMaster(w,
                                      [&replies](Tick) { ++replies; });
                });
            }
            eq.advanceTo(t);
        }
        eq.run();
        windows = exec.windows();
    }
    double secs = wallSeconds(start);

    if (replies != rounds * static_cast<std::uint64_t>(workers))
        throw std::runtime_error("pdes_window lost cross-domain records");
    if (windows == 0)
        throw std::runtime_error("pdes_window never ran a window");
    return Kernel{"pdes_window", "msgs_per_sec",
                  static_cast<double>(2 * rounds * workers) / secs,
                  secs};
}

/**
 * One-shot callback churn through an arena-backed queue — the worker
 * domains' allocation path. PoolStats must report zero global-
 * allocator hits: the event pool's growth is absorbed entirely by
 * the arena.
 */
Kernel
benchArenaChurn(bool quick)
{
    const std::uint64_t rounds = quick ? 200'000 : 2'000'000;

    auto start = std::chrono::steady_clock::now();
    tlsim::pdes::Arena arena;
    EventQueue eq;
    eq.setAllocHook(tlsim::pdes::Arena::hook, &arena);
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < rounds; ++i) {
        eq.scheduleCallback(eq.now() + 1, [&fired](Tick) { ++fired; });
        eq.advanceTo(eq.now() + 1);
    }
    eq.run();
    double secs = wallSeconds(start);

    if (fired != rounds)
        throw std::runtime_error("arena_churn lost callbacks");
    tlsim::PoolStats pool(eq);
    if (pool.heapAllocations() != 0)
        throw std::runtime_error("arena_churn hit the global allocator");
    return Kernel{"arena_churn", "events_per_sec",
                  static_cast<double>(rounds) / secs, secs};
}

/**
 * One fault-free SNUCA2 run at quickstart-sized budgets, honoring
 * --domains. This is the kernel the partitioned-execution speedup is
 * measured on (compare the --domains=1 and --domains=N BENCH jsons);
 * at --domains=1 it doubles as the determinism-overhead probe the
 * --compare gate holds to the 3% budget.
 */
Kernel
benchSnucaSingleRun(bool quick, int domains)
{
    tlsim::harness::SystemConfig config =
        tlsim::repro::defaultRunConfig();
    config.design = "SNUCA2";
    config.functionalWarm = quick ? 50'000 : 200'000;
    config.warmup = quick ? 5'000 : 20'000;
    config.measure = quick ? 50'000 : 500'000;
    config.domains = domains;
    const auto &profile = tlsim::workload::profileByName("bzip");

    auto start = std::chrono::steady_clock::now();
    auto result = tlsim::harness::runBenchmark(config, profile, 3);
    double secs = wallSeconds(start);

    if (!result.error.empty())
        throw std::runtime_error("snuca_single_run failed: " +
                                 result.error);
    if (result.cycles == 0)
        throw std::runtime_error("snuca_single_run measured nothing");
    return Kernel{"snuca_single_run", "wall_s", secs, secs};
}

/**
 * The quickstart sweep: the table6 experiment's spec list on reduced
 * budgets with margin-weighted fault injection enabled, exactly the
 * workload of
 *
 *   tlsim_repro --filter table6 --jobs 1 --warm 2000 --measure 5000
 *       --funcwarm 50000 --fault-ber 1e-6 --fault-margin --no-cache
 *
 * (full mode uses --warm 5000 --measure 20000 --funcwarm 200000).
 */
std::vector<tlsim::harness::sweep::RunSpec>
quickstartSpecs(bool quick, int jobs, int domains)
{
    (void)jobs;
    const auto *table6 = tlsim::repro::findExperiment("table6");
    if (!table6)
        throw std::runtime_error("table6 experiment not registered");
    tlsim::harness::SystemConfig base = tlsim::repro::defaultRunConfig();
    base.warmup = quick ? 2'000 : 5'000;
    base.measure = quick ? 5'000 : 20'000;
    base.functionalWarm = quick ? 50'000 : 200'000;
    base.fault.enabled = true;
    base.fault.bitErrorRate = 1e-6;
    base.fault.deriveFromMargin = true;
    // Honored for completeness, but note the margin-weighted BER makes
    // SNUCA2 decline to partition (the CRC-retry path has zero
    // lookahead), so these runs stay serial at any --domains; the
    // fault-free snuca_single_run kernel is where --domains bites.
    base.domains = domains;
    return table6->specs(base);
}

/** One pass of the eventq throughput mix; returns wall seconds. */
double
eventqWorkloadSeconds(std::uint64_t typed, std::uint64_t oneshots)
{
    auto start = std::chrono::steady_clock::now();
    EventQueue eq;
    TickerEvent ticker(eq, typed);
    eq.schedule(&ticker, 1);
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < oneshots; ++i) {
        eq.scheduleCallback(eq.now() + 2, [&fired](Tick) { ++fired; });
        eq.advanceTo(eq.now() + 1);
    }
    eq.run();
    double secs = wallSeconds(start);
    if (fired != oneshots)
        throw std::runtime_error("telemetry_overhead lost callbacks");
    return secs;
}

/**
 * Cost of the self-profiler on the dispatch hot path: the eventq
 * throughput workload timed with profiling off and on, alternating
 * within each rep so frequency drift hits both sides equally. The
 * reported value is min(on)/min(off) — 1.0 means free, 1.03 is the
 * budget --compare enforces.
 */
Kernel
benchTelemetryOverhead(bool quick)
{
    // Quick passes must still be long enough (~tens of ms) that the
    // per-rep ratio isn't dominated by timer and scheduler noise:
    // the gate compares against a 3% budget.
    const std::uint64_t typed = quick ? 1'000'000 : 2'000'000;
    const std::uint64_t oneshots = quick ? 500'000 : 1'000'000;
    const int reps = quick ? 11 : 7;

    bool was_enabled = tlsim::prof::enabled();
    auto start = std::chrono::steady_clock::now();
    // One discarded pass warms the allocator pools and branch
    // predictors; then each rep pairs an off- and an on-pass taken
    // back to back (order alternating per rep, so neither side
    // systematically runs first), and the median per-rep ratio is
    // reported. The pairing cancels slow frequency drift; the median
    // discards the reps a shared box's noise bursts land on (min
    // would credit noise on the off side as a fake speedup).
    tlsim::prof::setEnabled(false);
    eventqWorkloadSeconds(typed, oneshots);
    std::vector<double> ratios;
    ratios.reserve(reps);
    for (int r = 0; r < reps; ++r) {
        bool on_first = (r & 1) != 0;
        tlsim::prof::setEnabled(on_first);
        double first = eventqWorkloadSeconds(typed, oneshots);
        tlsim::prof::setEnabled(!on_first);
        double second = eventqWorkloadSeconds(typed, oneshots);
        double on = on_first ? first : second;
        double off = on_first ? second : first;
        ratios.push_back(on / off);
    }
    tlsim::prof::setEnabled(was_enabled);
    std::sort(ratios.begin(), ratios.end());
    double median_ratio = ratios[ratios.size() / 2];
    // When no one was profiling, the on-passes' samples are junk —
    // drop them. Under --prof-out the tree stays intact (a reset here
    // would also free the node of the caller's still-open scope) and
    // the samples simply show under this kernel's scope.
    if (!was_enabled)
        tlsim::prof::Registry::instance().reset();
    double secs = wallSeconds(start);

    return Kernel{"telemetry_overhead", "on_off_ratio",
                  median_ratio, secs};
}

std::pair<Kernel, Kernel>
benchSweepQuickstart(bool quick, int jobs, int domains)
{
    auto specs = quickstartSpecs(quick, jobs, domains);
    tlsim::harness::sweep::SweepOptions options;
    options.jobs = jobs;
    options.verbose = false;

    // Memo-cold: every physics value computed from scratch.
    tlsim::phys::PhysCache::instance().clear();
    auto cold_start = std::chrono::steady_clock::now();
    auto cold = tlsim::harness::sweep::runSweep(specs, options);
    double cold_secs = wallSeconds(cold_start);

    // Memo-hot: the sweep the quickstart user actually experiences
    // once the process-wide memo is populated.
    auto hot_start = std::chrono::steady_clock::now();
    auto hot = tlsim::harness::sweep::runSweep(specs, options);
    double hot_secs = wallSeconds(hot_start);

    if (cold.failed || hot.failed)
        throw std::runtime_error("quickstart sweep run failed");
    // Memoization must never change results.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &a = cold.results[i];
        const auto &b = hot.results[i];
        if (a.cycles != b.cycles || a.ipc != b.ipc ||
            a.meanLookupLatency != b.meanLookupLatency) {
            throw std::runtime_error(
                "memo-hot sweep diverged from memo-cold");
        }
    }

    return {Kernel{"sweep_quickstart", "wall_s", hot_secs, hot_secs},
            Kernel{"sweep_quickstart_memocold", "wall_s", cold_secs,
                   cold_secs}};
}

// ---------------------------------------------------------------- //
// Output, comparison, validation                                   //
// ---------------------------------------------------------------- //

void
writeJson(const std::string &path, const std::vector<Kernel> &kernels,
          bool quick, int jobs,
          const std::map<std::string, double> &speedups,
          const std::string &baseline_path)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n";
    os << "  \"schema\": \"tlsim-bench-v1\",\n";
    os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const Kernel &k = kernels[i];
        os << "    {\"name\": \"" << k.name << "\", \"metric\": \""
           << k.metric << "\", \"value\": " << k.value
           << ", \"wall_s\": " << k.wallS << "}"
           << (i + 1 < kernels.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    if (!speedups.empty()) {
        os << "  \"baseline\": \"" << baseline_path << "\",\n";
        os << "  \"speedups\": {";
        bool first = true;
        for (const auto &[name, speedup] : speedups) {
            os << (first ? "" : ", ") << "\"" << name
               << "\": " << speedup;
            first = false;
        }
        os << "},\n";
    }
    os << "  \"peak_rss_bytes\": " << peakRssBytes() << "\n";
    os << "}\n";

    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << os.str();
}

/** Throws with a message on any schema violation. */
void
validateBenchJson(const JsonValue &root)
{
    const JsonValue *schema = root.field("schema");
    if (!schema || schema->kind != JsonValue::Kind::String ||
        schema->string != "tlsim-bench-v1")
        throw std::runtime_error("schema field must be tlsim-bench-v1");
    const JsonValue *kernels = root.field("kernels");
    if (!kernels || kernels->kind != JsonValue::Kind::Array ||
        kernels->array.empty())
        throw std::runtime_error("kernels must be a non-empty array");
    for (const JsonValue &k : kernels->array) {
        const JsonValue *name = k.field("name");
        const JsonValue *metric = k.field("metric");
        const JsonValue *value = k.field("value");
        const JsonValue *wall = k.field("wall_s");
        if (!name || name->kind != JsonValue::Kind::String ||
            name->string.empty())
            throw std::runtime_error("kernel missing name");
        if (!metric || metric->kind != JsonValue::Kind::String ||
            metric->string.empty())
            throw std::runtime_error("kernel missing metric");
        if (!value || value->kind != JsonValue::Kind::Number ||
            !std::isfinite(value->number) || value->number <= 0.0)
            throw std::runtime_error(
                "kernel value must be a positive finite number");
        if (!wall || wall->kind != JsonValue::Kind::Number ||
            !std::isfinite(wall->number) || wall->number < 0.0)
            throw std::runtime_error(
                "kernel wall_s must be a finite number");
    }
    const JsonValue *rss = root.field("peak_rss_bytes");
    if (!rss || rss->kind != JsonValue::Kind::Number ||
        rss->number <= 0.0)
        throw std::runtime_error("peak_rss_bytes must be positive");
}

JsonValue
loadJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot read " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    JsonParser parser(text);
    return parser.parse();
}

std::map<std::string, double>
compareToBaseline(const std::vector<Kernel> &kernels,
                  const std::string &baseline_path)
{
    JsonValue base = loadJsonFile(baseline_path);
    validateBenchJson(base);

    std::map<std::string, double> speedups;
    std::cout << "\ncomparison vs " << baseline_path << ":\n";
    for (const Kernel &k : kernels) {
        const JsonValue *match = nullptr;
        for (const JsonValue &b : base.field("kernels")->array) {
            if (b.field("name")->string == k.name) {
                match = &b;
                break;
            }
        }
        if (!match) {
            std::cout << "  " << k.name << ": no baseline entry\n";
            continue;
        }
        double base_value = match->field("value")->number;
        // wall_s and ratios shrink when better; rates grow.
        bool smaller_is_better = k.metric == "wall_s" ||
                                 k.metric == "on_off_ratio";
        double speedup = smaller_is_better ? base_value / k.value
                                           : k.value / base_value;
        speedups[k.name] = speedup;
        std::cout << "  " << k.name << ": " << base_value << " -> "
                  << k.value << " (" << k.metric << "), speedup "
                  << speedup << "x\n";
    }
    return speedups;
}

void
usage()
{
    std::cout
        << "usage: tlsim_bench [options]\n"
           "  --quick            CI-sized kernels (default: full)\n"
           "  --jobs N           sweep worker threads (default 1)\n"
           "  --domains N        event domains for the sweep and\n"
           "                     single-run kernels (default 1, the\n"
           "                     serial loop)\n"
           "  --out FILE         output JSON (default "
           "BENCH_kernel.json)\n"
           "  --compare FILE     report speedups vs a baseline "
           "BENCH json; fails if the\n"
           "                     telemetry_overhead ratio exceeds "
           "1.03, or if a wall_s\n"
           "                     kernel at --domains=1 slowed more "
           "than 3%\n"
           "  --validate FILE    schema-check an existing BENCH json "
           "and exit\n"
           "  --prof-out FILE    profile the kernels themselves; "
           "collapsed stacks to FILE,\n"
           "                     attribution table to stderr\n"
           "  --help             this text\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    int jobs = 1;
    int domains = 1;
    std::string out_path = "BENCH_kernel.json";
    std::string compare_path;
    std::string validate_path;
    std::string prof_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--jobs") {
            jobs = std::stoi(next());
        } else if (arg == "--domains") {
            domains = std::stoi(next());
            if (domains < 1) {
                std::cerr << "--domains must be >= 1\n";
                return 2;
            }
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--compare") {
            compare_path = next();
        } else if (arg == "--validate") {
            validate_path = next();
        } else if (arg == "--prof-out") {
            prof_path = next();
        } else if (arg == "--help") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage();
            return 2;
        }
    }

    if (!validate_path.empty()) {
        try {
            validateBenchJson(loadJsonFile(validate_path));
        } catch (const std::exception &ex) {
            std::cerr << validate_path << ": " << ex.what() << "\n";
            return 1;
        }
        std::cout << validate_path << ": schema ok\n";
        return 0;
    }

    if (!prof_path.empty())
        tlsim::prof::setEnabled(true);

    try {
        std::vector<Kernel> kernels;
        auto run = [&](const char *scope_name, auto &&kernel_fn) {
            tlsim::prof::Scope scope(scope_name);
            kernels.push_back(kernel_fn());
        };
        run("bench:eventq_throughput",
            [&] { return benchEventqThroughput(quick); });
        run("bench:eventq_churn",
            [&] { return benchEventqChurn(quick); });
        run("bench:pulse_sim_cold",
            [&] { return benchPulseSimCold(quick); });
        run("bench:physcache_hot",
            [&] { return benchPhyscacheHot(quick); });
        run("bench:ddr_frfcfs",
            [&] { return benchDdrFrfcfs(quick); });
        run("bench:pdes_window",
            [&] { return benchPdesWindow(quick); });
        run("bench:arena_churn",
            [&] { return benchArenaChurn(quick); });
        run("bench:snuca_single_run",
            [&] { return benchSnucaSingleRun(quick, domains); });
        {
            tlsim::prof::Scope scope("bench:sweep_quickstart");
            auto [hot, cold] =
                benchSweepQuickstart(quick, jobs, domains);
            kernels.push_back(hot);
            kernels.push_back(cold);
        }
        // Last: it toggles the profiler flag itself.
        run("bench:telemetry_overhead",
            [&] { return benchTelemetryOverhead(quick); });

        for (const Kernel &k : kernels) {
            std::cout << k.name << ": " << k.value << " " << k.metric
                      << " (" << k.wallS << " s)\n";
        }

        std::map<std::string, double> speedups;
        if (!compare_path.empty()) {
            speedups = compareToBaseline(kernels, compare_path);
            for (const Kernel &k : kernels) {
                if (k.name != "telemetry_overhead" || k.value <= 1.03)
                    continue;
                // Re-measure before failing: on a shared box one
                // noisy measurement shouldn't fail the gate, while a
                // real regression fails every attempt.
                double ratio = k.value;
                for (int retry = 0; retry < 2 && ratio > 1.03; ++retry) {
                    ratio = benchTelemetryOverhead(quick).value;
                    std::cout << "telemetry_overhead (re-measure "
                              << retry + 1 << "): " << ratio << "\n";
                }
                if (ratio > 1.03) {
                    throw std::runtime_error(
                        "telemetry_overhead ratio " +
                        std::to_string(ratio) +
                        " exceeds the 1.03 budget");
                }
            }
            // Determinism-mode overhead gate: at --domains=1 the PDES
            // plumbing (sequence stride, coordinator indirection,
            // partition hooks) must be free. Fail when a gated wall_s
            // kernel slowed more than 3% vs baseline, re-measuring
            // first so one noise burst on a shared box doesn't fail
            // the gate while a real regression fails every attempt.
            if (domains == 1) {
                auto gate = [&](const std::string &name,
                                const std::function<Kernel()> &again) {
                    auto it = speedups.find(name);
                    if (it == speedups.end())
                        return;
                    const Kernel *k = nullptr;
                    for (const Kernel &c : kernels) {
                        if (c.name == name)
                            k = &c;
                    }
                    // speedup = base/current for wall_s metrics.
                    double base_value = it->second * k->value;
                    double speedup = it->second;
                    for (int retry = 0;
                         retry < 2 && speedup < 0.97; ++retry) {
                        speedup = base_value / again().value;
                        std::cout << name << " (re-measure "
                                  << retry + 1 << "): speedup "
                                  << speedup << "x\n";
                    }
                    if (speedup < 0.97) {
                        throw std::runtime_error(
                            name +
                            " slowed beyond the 3% determinism "
                            "budget (speedup " +
                            std::to_string(speedup) + "x)");
                    }
                };
                gate("snuca_single_run", [&] {
                    return benchSnucaSingleRun(quick, domains);
                });
                gate("sweep_quickstart", [&] {
                    return benchSweepQuickstart(quick, jobs, domains)
                        .first;
                });
            }
        }

        writeJson(out_path, kernels, quick, jobs, speedups,
                  compare_path);
        std::cout << "\nwrote " << out_path << "\n";
    } catch (const std::exception &ex) {
        std::cerr << "tlsim_bench: " << ex.what() << "\n";
        return 1;
    }

    if (!prof_path.empty()) {
        tlsim::prof::setEnabled(false);
        std::ofstream collapsed(prof_path);
        if (collapsed) {
            tlsim::prof::Registry::instance().writeCollapsed(collapsed);
            std::cout << "collapsed stacks written: " << prof_path
                      << "\n";
        } else {
            std::cerr << "cannot write " << prof_path << "\n";
        }
        tlsim::prof::Registry::instance().writeReport(std::cerr);
    }
    return 0;
}
