/**
 * @file
 * Ablation: shield lines and signal integrity (paper Section 3).
 * Quantifies why TLC inserts an alternating power/ground shield
 * between every pair of transmission lines: without them, neighbour
 * crosstalk blows the noise budget; with them, the bundles also pay
 * 2x the wiring pitch. Includes the eye-diagram view of each Table 1
 * line under a random bit train (inter-symbol interference).
 */

#include <iostream>

#include "phys/crosstalk.hh"
#include "phys/geometry.hh"
#include "phys/pulse.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;
using namespace tlsim::phys;

int
main()
{
    const Technology &tech = tech45();
    CrosstalkModel xtalk(tech);
    PulseSimulator pulses(tech);

    TextTable table("Ablation: shielding vs crosstalk "
                    "(Table 1 lines, 10 ps edges)");
    table.setHeader({"Length [cm]", "Shielded", "Cm/C", "Lm/L",
                     "near-end [%Vdd]", "far-end [%Vdd]",
                     "within 15% budget"});

    for (const auto &spec : paperTable1Lines()) {
        for (bool shielded : {false, true}) {
            auto result =
                xtalk.analyze(spec.geometry, spec.length, shielded);
            table.addRow(
                {TextTable::num(spec.length * 100.0, 1),
                 shielded ? "yes" : "no",
                 TextTable::num(result.capacitiveRatio, 3),
                 TextTable::num(result.inductiveRatio, 3),
                 TextTable::num(100.0 * result.nearEnd, 1),
                 TextTable::num(100.0 * result.farEnd, 1),
                 result.withinBudget() ? "yes" : "NO"});
        }
    }
    table.print(std::cout);

    TextTable eyes("\nEye diagrams under a 48-bit random train "
                   "(inter-symbol interference)");
    eyes.setHeader({"Length [cm]", "eye height [%Vdd]",
                    "eye width [%bit]", "passes"});
    for (const auto &spec : paperTable1Lines()) {
        EyeResult eye = pulses.eyeDiagram(spec.geometry, spec.length,
                                          48);
        eyes.addRow({TextTable::num(spec.length * 100.0, 1),
                     TextTable::num(100.0 * eye.eyeHeight, 1),
                     TextTable::num(100.0 * eye.eyeWidth, 1),
                     eye.passes() ? "yes" : "NO"});
    }
    eyes.print(std::cout);

    std::cout << "\nExpected: every unshielded configuration exceeds "
                 "the noise budget; the paper's shielded bundles pass "
                 "with wide-open eyes.\n";
    return 0;
}
