/**
 * @file
 * Reproduces paper Figure 8: execution time of the optimized TLC
 * designs normalized to the base TLC — the claim that 6x fewer wires
 * costs almost no performance.
 */

#include <algorithm>
#include <iostream>

#include "benchcommon.hh"
#include "paperdata.hh"
#include "sim/table.hh"

using namespace tlsim;
using harness::DesignKind;

int
main(int argc, char **argv)
{
    benchcommon::initObservability(argc, argv);
    TextTable table("Figure 8: TLC Family Execution Time "
                    "(normalized to base TLC)");
    table.setHeader({"Bench", "TLC", "TLCopt1000", "TLCopt500",
                     "TLCopt350", "multi-match% (opt350)"});

    double worst = 0.0;
    for (const auto &bench : paperdata::benchmarks) {
        const auto &base = benchcommon::cachedRun(DesignKind::TlcBase,
                                                  bench);
        double base_cycles = static_cast<double>(base.cycles);
        std::vector<std::string> row{bench, "1.000"};
        for (DesignKind kind :
             {DesignKind::TlcOpt1000, DesignKind::TlcOpt500,
              DesignKind::TlcOpt350}) {
            const auto &result = benchcommon::cachedRun(kind, bench);
            double norm = result.cycles / base_cycles;
            worst = std::max(worst, norm);
            row.push_back(TextTable::num(norm, 3));
        }
        const auto &opt350 =
            benchcommon::cachedRun(DesignKind::TlcOpt350, bench);
        row.push_back(TextTable::num(opt350.multiMatchPct, 2));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nWorst TLCopt slowdown vs base TLC: "
              << TextTable::num(100.0 * (worst - 1.0), 1)
              << "% (paper: comparable performance; multiple partial "
                 "matches in ~1% of lookups).\n";
    return 0;
}
