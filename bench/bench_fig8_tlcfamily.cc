/**
 * @file
 * Reproduces paper Figure 8: execution time of the optimized TLC
 * designs normalized to the base TLC — the claim that 6x fewer wires
 * costs almost no performance.
 *
 * Thin wrapper over the sweep runner: equivalent to
 * `tlsim_repro --filter fig8`, and accepts the same options.
 */

#include "repro/reprocli.hh"

int
main(int argc, char **argv)
{
    return tlsim::repro::experimentMain("fig8", argc, argv);
}
