# ctest driver of the trace_convert round trip: decode the checked-in
# sample trace to the text format, re-encode it, and require the
# re-encoded binary to be byte-identical to the original (the encoder
# is canonical: same records -> same file image).
#
# Arguments: -DTRACE_CONVERT=<binary> -DTRACE=<file> -DOUTDIR=<dir>

file(REMOVE_RECURSE "${OUTDIR}")
file(MAKE_DIRECTORY "${OUTDIR}")

execute_process(
    COMMAND "${TRACE_CONVERT}" decode "${TRACE}"
            "${OUTDIR}/decoded.txt"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace_convert decode failed (${rc})")
endif()

execute_process(
    COMMAND "${TRACE_CONVERT}" encode "${OUTDIR}/decoded.txt"
            "${OUTDIR}/reencoded.tlt"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace_convert encode failed (${rc})")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files "${TRACE}"
            "${OUTDIR}/reencoded.tlt"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "re-encoded trace differs from the original image")
endif()
