#!/usr/bin/env python3
"""Validate tlsim sweep telemetry artifacts.

Checks two files produced by ``tlsim_repro``:

* ``--metrics-out`` — Prometheus text exposition format 0.0.4. Every
  sample line must parse, every family must carry # HELP/# TYPE
  headers, histogram bucket counts must be cumulative and agree with
  ``_count``, and the run-outcome counters must sum to the sweep size.
* ``--manifest`` — the per-run JSONL ledger. Every line must be a
  JSON object with the ``tlsim-manifest-v1`` schema tag and the
  required fields, outcomes must be one of cached / executed /
  failed / restored, and the file must end with a newline (the ledger
  is written one fsync'd line at a time, so a truncated final record
  means the writer's durability contract broke).

Exit status is the number of violations, so CI fails on any.

Usage:
  python3 tools/check_telemetry.py --metrics M.prom --manifest M.jsonl \
      [--expect-runs N]
"""

import argparse
import json
import re
import sys

SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[-+0-9.eE]+|\+Inf|-Inf|NaN)$"
)
LABELS = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

MANIFEST_SCHEMA = "tlsim-manifest-v1"
MANIFEST_REQUIRED = (
    "schema",
    "spec",
    "benchmark",
    "design",
    "outcome",
    "wall_ms",
    "retries",
    "timeouts",
    "degraded",
)
OUTCOMES = {"cached", "executed", "failed", "restored"}


def base_family(name: str) -> str:
    """Family a sample belongs to (histogram series fold together)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_metrics(path: str, errors: list[str]) -> dict:
    """Parse the Prometheus file; return {family: [(labels, value)]}."""
    helped, typed = set(), set()
    samples: dict[str, list] = {}
    family_type: dict[str, str] = {}
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                typed.add(parts[2])
                family_type[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                errors.append(f"{path}:{lineno}: bad comment: {line}")
                continue
            m = SAMPLE.match(line)
            if not m:
                errors.append(f"{path}:{lineno}: unparsable: {line}")
                continue
            labels = dict(LABELS.findall(m.group("labels") or ""))
            value = float(m.group("value"))
            family = base_family(m.group("name"))
            samples.setdefault(family, []).append(
                (m.group("name"), labels, value)
            )

    for family in samples:
        if family not in helped:
            errors.append(f"{path}: family '{family}' missing # HELP")
        if family not in typed:
            errors.append(f"{path}: family '{family}' missing # TYPE")

    # Histogram invariants: buckets cumulative, +Inf == _count.
    for family, ftype in family_type.items():
        if ftype != "histogram" or family not in samples:
            continue
        buckets = [
            (labels.get("le", ""), value)
            for name, labels, value in samples[family]
            if name.endswith("_bucket")
        ]
        count = next(
            (
                v
                for n, _, v in samples[family]
                if n.endswith("_count")
            ),
            None,
        )
        prev = 0.0
        for le, v in buckets:
            if v < prev:
                errors.append(
                    f"{path}: histogram '{family}' bucket le={le} "
                    f"not cumulative ({v} < {prev})"
                )
            prev = v
        if not buckets or buckets[-1][0] != "+Inf":
            errors.append(
                f"{path}: histogram '{family}' missing +Inf bucket"
            )
        elif count is not None and buckets[-1][1] != count:
            errors.append(
                f"{path}: histogram '{family}' +Inf bucket "
                f"{buckets[-1][1]} != _count {count}"
            )
    return samples


def check_manifest(path: str, errors: list[str]) -> int:
    """Validate the JSONL ledger; return the record count."""
    records = 0
    with open(path, "rb") as f:
        content = f.read()
    if content and not content.endswith(b"\n"):
        errors.append(
            f"{path}: truncated final record (file does not end "
            f"with a newline; each line should be one durable write)"
        )
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: bad JSON: {exc}")
                continue
            if not isinstance(rec, dict):
                errors.append(f"{path}:{lineno}: not an object")
                continue
            records += 1
            for field in MANIFEST_REQUIRED:
                if field not in rec:
                    errors.append(
                        f"{path}:{lineno}: missing field '{field}'"
                    )
            if rec.get("schema") != MANIFEST_SCHEMA:
                errors.append(
                    f"{path}:{lineno}: schema "
                    f"'{rec.get('schema')}' != '{MANIFEST_SCHEMA}'"
                )
            if rec.get("outcome") not in OUTCOMES:
                errors.append(
                    f"{path}:{lineno}: bad outcome "
                    f"'{rec.get('outcome')}'"
                )
            if rec.get("outcome") == "failed" and "error" not in rec:
                errors.append(
                    f"{path}:{lineno}: failed record without 'error'"
                )
    return records


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--metrics", help="Prometheus text file")
    ap.add_argument("--manifest", help="manifest.jsonl ledger")
    ap.add_argument(
        "--expect-runs",
        type=int,
        default=-1,
        help="expected sweep size (manifest records and "
        "run-outcome counter total must match)",
    )
    args = ap.parse_args()
    if not args.metrics and not args.manifest:
        ap.error("give at least one of --metrics / --manifest")

    errors: list[str] = []
    samples = {}
    records = -1
    if args.metrics:
        samples = check_metrics(args.metrics, errors)
    if args.manifest:
        records = check_manifest(args.manifest, errors)

    if args.expect_runs >= 0:
        if args.manifest and records != args.expect_runs:
            errors.append(
                f"{args.manifest}: {records} records, expected "
                f"{args.expect_runs}"
            )
        if args.metrics:
            total = sum(
                v
                for _, _, v in samples.get("tlsim_sweep_runs_total", [])
            )
            if total != args.expect_runs:
                errors.append(
                    f"{args.metrics}: tlsim_sweep_runs_total sums to "
                    f"{total}, expected {args.expect_runs}"
                )

    for err in errors:
        print(err, file=sys.stderr)
    if not errors:
        parts = []
        if args.metrics:
            parts.append(
                f"{args.metrics}: {len(samples)} metric families OK"
            )
        if args.manifest:
            parts.append(f"{args.manifest}: {records} records OK")
        print("; ".join(parts))
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
