#!/usr/bin/env python3
"""Validate the "ddr" memory-backend smoke sweep's stats JSON.

CI runs ``tlsim_repro --mem ddr ... --stats-json FILE`` and feeds the
file here. The checks pin the controller model's observable behavior:

* every run's stats tree has a ``dram`` group with the ddr counters
  (``row_hits``, ``row_misses``, ``row_conflicts``, ``refreshes``) and
  the per-phase latency distributions;
* aggregated across the sweep, row hits, row misses, row conflicts,
  and refreshes are all nonzero — the row buffer, the page-policy
  transitions, and the refresh machinery all actually fired;
* per run, ``lat_queue``/``lat_bank``/``lat_bus`` carry one sample per
  serviced request: the exact-sum latency partition covers every
  request, none double-counted, none dropped. The count may differ
  from reads + writes by the handful of requests in flight across the
  measurement boundaries (reads/writes increment at accept, lat_*
  sample at service, and stats reset between warmup and measure), but
  only by a sliver of the total.

Only the standard library is used.

Usage:
  python3 tools/check_memsmoke.py stats.json [--expect-runs N]
"""

import argparse
import json
import sys

DDR_SCALARS = ("row_hits", "row_misses", "row_conflicts", "refreshes")
DDR_DISTS = ("lat_queue", "lat_bank", "lat_bus")


def fail(msg):
    print(f"check_memsmoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def scalar(group, name, run):
    node = group.get(name)
    if not isinstance(node, dict) or "value" not in node:
        fail(f"{run}: dram.{name} missing from stats tree")
    return node["value"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="stats JSON from --stats-json")
    parser.add_argument(
        "--expect-runs",
        type=int,
        default=0,
        help="exact number of runs the sweep must contain (0: any)",
    )
    args = parser.parse_args()

    with open(args.stats, encoding="utf-8") as f:
        doc = json.load(f)

    runs = {k: v for k, v in doc.items() if isinstance(v, dict)}
    if not runs:
        fail("no run stats in document")
    if args.expect_runs and len(runs) != args.expect_runs:
        fail(f"expected {args.expect_runs} runs, found {len(runs)}")

    totals = dict.fromkeys(DDR_SCALARS, 0)
    for run, tree in runs.items():
        dram = tree.get("dram")
        if not isinstance(dram, dict):
            fail(f"{run}: no dram group in stats tree")
        for name in DDR_SCALARS:
            totals[name] += scalar(dram, name, run)

        requests = scalar(dram, "reads", run) + scalar(
            dram, "writes", run
        )
        in_flight_slack = max(64, requests // 100)
        for name in DDR_DISTS:
            node = dram.get(name)
            if not isinstance(node, dict) or "count" not in node:
                fail(f"{run}: dram.{name} missing from stats tree")
            count = node["count"]
            if abs(count - requests) > in_flight_slack:
                fail(
                    f"{run}: dram.{name} count {count} vs reads+writes "
                    f"{requests} — the latency partition no longer "
                    f"covers every serviced request"
                )

    for name, value in totals.items():
        if value <= 0:
            fail(
                f"aggregate dram.{name} is {value}; the smoke sweep "
                f"never exercised this controller path"
            )

    print(
        "check_memsmoke: OK — "
        + ", ".join(f"{k}={int(v)}" for k, v in totals.items())
        + f" across {len(runs)} runs"
    )


if __name__ == "__main__":
    main()
