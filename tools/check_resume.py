#!/usr/bin/env python3
"""Crash-resume drill for the tlsim sweep harness.

Exercises the full robustness story end to end against a real
``tlsim_repro`` binary (docs/ROBUSTNESS.md):

1. **Reference** — run a small sweep under ``--isolate=process`` with
   no cache and capture the merged stats JSON. This is the ground
   truth an interrupted-and-resumed sweep must reproduce byte for
   byte.
2. **Crash** — rerun the same sweep with a journal and a result
   cache, with two test hooks armed: one spec raises SIGSEGV in its
   sandbox child (and must surface as a per-run ``crashed`` record),
   and the last spec SIGKILLs the whole sweep from its child — a
   deterministic stand-in for an OOM kill or power cut. The drill
   asserts the process died by SIGKILL and that the journal is a
   clean prefix: an identity header plus at least one durable
   ``done`` record.
3. **Resume** — ``--resume`` the journal (hooks disarmed). The drill
   asserts the sweep exits cleanly, that no spec already ``done``
   before the kill was started again after the ``resumed`` marker,
   and that the final stats JSON is byte-identical to the reference.
4. **Fsck** — ``--fsck-cache`` passes on the healthy cache (exit 0),
   then a deliberately truncated entry is quarantined (exit 2) and a
   second pass comes back clean.

Exit status is the number of violations, so CI fails on any.

Usage:
  python3 tools/check_resume.py --repro build/bench/tlsim_repro \
      --workdir /tmp/drill
"""

import argparse
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys

SWEEP_ARGS = [
    "--filter", "table6",
    "--jobs", "2",
    "--warm", "2000",
    "--measure", "5000",
    "--funcwarm", "50000",
    "--quiet",
    "--isolate", "process",
]


def run(repro, args, env_extra=None, timeout=600):
    env = os.environ.copy()
    for hook in (
        "TLSIM_TEST_CRASH_SPEC",
        "TLSIM_TEST_HANG_SPEC",
        "TLSIM_TEST_OOM_SPEC",
        "TLSIM_TEST_KILL_SWEEP_SPEC",
    ):
        env.pop(hook, None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [repro] + args,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        timeout=timeout,
    )


def journal_records(path):
    """Parse the journal, tolerating a torn trailing line."""
    records = []
    lines = pathlib.Path(path).read_text().splitlines()
    for i, line in enumerate(lines):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn trailing line: the expected kill scar
            raise
    return records


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--repro", required=True, help="tlsim_repro path")
    ap.add_argument("--workdir", required=True)
    args = ap.parse_args()

    work = pathlib.Path(args.workdir)
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)
    ref_json = work / "ref.json"
    out_json = work / "out.json"
    cache = work / "cache"
    journal = work / "sweep.jsonl"

    errors = []

    def check(cond, message):
        if not cond:
            errors.append(message)
        return cond

    # Phase 1: fault-free reference.
    ref = run(args.repro, SWEEP_ARGS + [
        "--no-cache", "--stats-json", str(ref_json)])
    if not check(ref.returncode == 0,
                 f"reference sweep failed rc={ref.returncode}: "
                 f"{ref.stderr[-2000:]}"):
        return report(errors)
    spec_keys = list(json.loads(ref_json.read_text()).keys())
    if not check(len(spec_keys) >= 6,
                 f"reference produced only {len(spec_keys)} specs"):
        return report(errors)
    crash_spec = spec_keys[len(spec_keys) // 3]
    kill_spec = spec_keys[-1]  # dispatched last: earlier runs finish

    # Phase 2: journaled sweep killed mid-flight, one spec crashing.
    crash = run(args.repro, SWEEP_ARGS + [
        "--cache-dir", str(cache),
        "--journal", str(journal),
        "--stats-json", str(work / "crash.json")],
        env_extra={
            "TLSIM_TEST_CRASH_SPEC": crash_spec,
            "TLSIM_TEST_KILL_SWEEP_SPEC": kill_spec,
        })
    check(crash.returncode == -signal.SIGKILL,
          f"expected the sweep to die by SIGKILL, got rc="
          f"{crash.returncode}: {crash.stderr[-2000:]}")
    check(journal.exists(), "killed sweep left no journal")
    records = journal_records(journal)
    check(records and records[0].get("event") == "header",
          "journal does not start with an identity header")
    done_before = {r["spec"] for r in records
                   if r.get("event") == "done"}
    check(len(done_before) >= 1,
          "journal has no durable done records before the kill")
    check(kill_spec not in done_before,
          "the kill spec cannot have completed")
    crashed = [r for r in records if r.get("event") == "crashed"]
    check(any(r.get("spec") == crash_spec for r in crashed),
          f"no crashed record for {crash_spec}")
    check(any("signal 11" in r.get("error", "") for r in crashed),
          "crashed record does not carry the signal verdict")

    # Phase 3: resume, hooks disarmed.
    resumed = run(args.repro, SWEEP_ARGS + [
        "--cache-dir", str(cache),
        "--resume", str(journal),
        "--stats-json", str(out_json)])
    check(resumed.returncode == 0,
          f"resumed sweep failed rc={resumed.returncode}: "
          f"{resumed.stderr[-2000:]}")
    records = journal_records(journal)
    marker = next((i for i, r in enumerate(records)
                   if r.get("event") == "resumed"), None)
    if check(marker is not None, "resume wrote no resumed marker"):
        restarted = {r["spec"] for r in records[marker:]
                     if r.get("event") == "started"}
        overlap = done_before & restarted
        check(not overlap,
              f"resume re-executed already-done specs: "
              f"{sorted(overlap)[:3]}")
    if out_json.exists() and ref_json.exists():
        check(out_json.read_bytes() == ref_json.read_bytes(),
              "resumed stats JSON is not byte-identical to the "
              "fault-free reference")
    else:
        check(False, "resumed sweep wrote no stats JSON")

    # Phase 4: cache fsck — clean pass, quarantine, clean again.
    fsck = run(args.repro, ["--fsck-cache", "--cache-dir", str(cache)])
    check(fsck.returncode == 0,
          f"fsck of a healthy cache rc={fsck.returncode}: "
          f"{fsck.stdout} {fsck.stderr[-500:]}")
    check("0 quarantined" in fsck.stdout,
          f"unexpected fsck summary: {fsck.stdout}")
    entries = sorted(cache.glob("*.json"))
    if check(bool(entries), "cache has no entries to corrupt"):
        victim = entries[0]
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        fsck = run(args.repro,
                   ["--fsck-cache", "--cache-dir", str(cache)])
        check(fsck.returncode == 2,
              f"fsck of a corrupt cache rc={fsck.returncode}, "
              f"expected 2: {fsck.stdout}")
        check("1 quarantined" in fsck.stdout,
              f"unexpected fsck summary: {fsck.stdout}")
        check((cache / "quarantine" / victim.name).exists(),
              "corrupt entry was not preserved in quarantine/")
        fsck = run(args.repro,
                   ["--fsck-cache", "--cache-dir", str(cache)])
        check(fsck.returncode == 0,
              "fsck after quarantine should come back clean")

    return report(errors)


def report(errors):
    for err in errors:
        print(f"FAIL: {err}", file=sys.stderr)
    if not errors:
        print("crash-resume drill OK: kill survived, journal "
              "replayed, stats byte-identical, fsck round-tripped")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main())
