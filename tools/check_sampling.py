#!/usr/bin/env python3
"""Validate a tlsim-tracerun-v1 stats JSON against the documented
sampling tolerances (docs/SAMPLING.md).

Run tlsim_repro with --trace ... --trace-validate --stats-json FILE
(twice against the same --checkpoint-dir if --min-speedup is checked:
the first run populates the warm checkpoints, the second reaps them),
then:

    check_sampling.py FILE [--min-speedup X] [--max-ipc-error F]
                           [--max-miss-error F] [--expect-hits N]

Exits non-zero with a diagnostic when any bound is violated.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="tlsim-tracerun-v1 JSON file")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="minimum full/sampled wall-clock ratio")
    parser.add_argument("--max-ipc-error", type=float, default=0.10,
                        help="max |relative IPC error| (default 0.10)")
    parser.add_argument("--max-miss-error", type=float, default=0.15,
                        help="max |relative L2-miss-rate error| "
                             "(default 0.15)")
    parser.add_argument("--expect-hits", type=int, default=None,
                        help="exact warm-checkpoint hit count")
    args = parser.parse_args()

    with open(args.stats, encoding="utf-8") as handle:
        doc = json.load(handle)

    if doc.get("schema") != "tlsim-tracerun-v1":
        print(f"unexpected schema: {doc.get('schema')!r}")
        return 1

    failures = []

    weights = [i["weight"] for i in doc.get("intervals", [])]
    if weights and abs(sum(weights) - 1.0) > 1e-9:
        failures.append(f"interval weights sum to {sum(weights)!r}, "
                        "expected 1")

    if "ipc_rel_error" in doc:
        err = abs(doc["ipc_rel_error"])
        print(f"ipc error: {100 * err:.2f}% "
              f"(bound {100 * args.max_ipc_error:.0f}%)")
        if err > args.max_ipc_error:
            failures.append(f"IPC error {err:.4f} exceeds "
                            f"{args.max_ipc_error}")
    elif args.min_speedup is not None:
        failures.append("no validation section in the stats JSON "
                        "(run with --trace-validate)")

    if "l2_misses_per_1k_rel_error" in doc:
        err = abs(doc["l2_misses_per_1k_rel_error"])
        print(f"l2 miss error: {100 * err:.2f}% "
              f"(bound {100 * args.max_miss_error:.0f}%)")
        if err > args.max_miss_error:
            failures.append(f"L2 miss error {err:.4f} exceeds "
                            f"{args.max_miss_error}")

    if args.min_speedup is not None and "speedup" in doc:
        print(f"speedup: {doc['speedup']:.2f}x "
              f"(bound {args.min_speedup:.1f}x)")
        if doc["speedup"] < args.min_speedup:
            failures.append(f"speedup {doc['speedup']:.2f}x below "
                            f"{args.min_speedup}x")

    if args.expect_hits is not None:
        hits = doc.get("checkpoint", {}).get("hits")
        print(f"checkpoint hits: {hits} (expected {args.expect_hits})")
        if hits != args.expect_hits:
            failures.append(f"checkpoint hits {hits}, expected "
                            f"{args.expect_hits}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("sampling stats within documented tolerances")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
