#!/usr/bin/env python3
"""Render spatial utilization heatmaps from a tlsim stats JSON file.

``tlsim_repro --heatmaps --stats-json FILE`` embeds time-by-space
heatmap matrices (``"kind": "heatmap"``) in the per-run stats trees:
rows are simulated-time windows, columns are spatial cells (cache
banks or interconnect links), values are accumulated busy/wait cycles.
This script finds every heatmap in the document and renders it as an
ASCII shade plot on stdout; with ``--svg DIR`` it also writes one SVG
per heatmap — the generalized form of the paper's Figure 7 bank-
utilization view.

Only the standard library is used.

Usage:
  python3 tools/heatmap.py stats.json
  python3 tools/heatmap.py stats.json --run 'TLC/gcc' --name bank_busy
  python3 tools/heatmap.py stats.json --svg out/
"""

import argparse
import json
import signal
import sys
from pathlib import Path

# Die quietly when stdout is a closed pipe (e.g. piped into head).
if hasattr(signal, "SIGPIPE"):
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)

# Darker shade = busier cell; index scales with value/max.
SHADES = " .:-=+*#%@"


def find_heatmaps(node, path=""):
    """Yield (path, heatmap-dict) for every heatmap in the tree."""
    if not isinstance(node, dict):
        return
    if node.get("kind") == "heatmap":
        yield path, node
        return
    for key, child in node.items():
        sub = f"{path}.{key}" if path else key
        yield from find_heatmaps(child, sub)


def render_ascii(path, hm, width=64):
    rows = hm["data"]
    cells = hm["cells"]
    window = hm["window"]
    peak = max((v for row in rows for v in row), default=0)
    print(f"=== {path} ===")
    print(f"  {hm.get('desc', '')}")
    print(
        f"  {len(rows)} windows x {cells} cells, "
        f"window = {window} ticks, base tick = {hm['base_tick']}, "
        f"peak = {peak}"
    )
    if peak == 0:
        print("  (no activity recorded)")
        return
    # Fold wide matrices into at most `width` columns so plots stay
    # terminal-sized; each printed column shows the max of its fold.
    fold = max(1, (cells + width - 1) // width)
    for r, row in enumerate(rows):
        folded = [
            max(row[c : c + fold]) for c in range(0, cells, fold)
        ]
        line = "".join(
            SHADES[min(len(SHADES) - 1, v * (len(SHADES) - 1) // peak)]
            for v in folded
        )
        tick = hm["base_tick"] + r * window
        print(f"  t={tick:>12} |{line}|")
    if fold > 1:
        print(f"  (each column folds {fold} cells, showing the max)")
    print(f"  scale: ' ' = 0 .. '@' = {peak}")


def render_svg(path, hm, out_dir):
    rows = hm["data"]
    cells = hm["cells"]
    peak = max((v for row in rows for v in row), default=0)
    cell_px = 10
    label_px = 120
    w = label_px + cells * cell_px + 10
    h = 30 + max(1, len(rows)) * cell_px + 10
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{w}" height="{h}">',
        f'<text x="4" y="16" font-family="monospace" '
        f'font-size="12">{path} (peak {peak})</text>',
    ]
    for r, row in enumerate(rows):
        y = 30 + r * cell_px
        tick = hm["base_tick"] + r * hm["window"]
        parts.append(
            f'<text x="4" y="{y + 8}" font-family="monospace" '
            f'font-size="8">t={tick}</text>'
        )
        for c, v in enumerate(row):
            # White (idle) to dark red (peak).
            frac = v / peak if peak else 0.0
            shade = int(255 * (1.0 - frac))
            parts.append(
                f'<rect x="{label_px + c * cell_px}" y="{y}" '
                f'width="{cell_px - 1}" height="{cell_px - 1}" '
                f'fill="rgb(255,{shade},{shade})"/>'
            )
    parts.append("</svg>")
    name = path.replace("/", "_").replace(".", "_") + ".svg"
    out = Path(out_dir) / name
    out.write_text("\n".join(parts), encoding="utf-8")
    print(f"  svg written: {out}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("stats", help="stats JSON from --stats-json")
    ap.add_argument(
        "--run", default="", help="substring filter on the run key"
    )
    ap.add_argument(
        "--name", default="", help="substring filter on the stat path"
    )
    ap.add_argument(
        "--svg", default="", help="also write one SVG per heatmap here"
    )
    ap.add_argument(
        "--width",
        type=int,
        default=64,
        help="max ASCII columns (default 64)",
    )
    args = ap.parse_args()

    with open(args.stats, encoding="utf-8") as f:
        doc = json.load(f)

    if args.svg:
        Path(args.svg).mkdir(parents=True, exist_ok=True)

    count = 0
    for run_key, tree in doc.items():
        if args.run and args.run not in run_key:
            continue
        if tree is None:
            continue
        for path, hm in find_heatmaps(tree, run_key):
            if args.name and args.name not in path:
                continue
            render_ascii(path, hm, width=args.width)
            if args.svg:
                render_svg(path, hm, args.svg)
            print()
            count += 1

    if count == 0:
        print(
            "no heatmaps found (run tlsim_repro with --heatmaps "
            "--stats-json)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
