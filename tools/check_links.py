#!/usr/bin/env python3
"""Check relative links and file references in the repo's Markdown.

Scans the top-level *.md files and docs/*.md for Markdown links
(``[text](target)``) and fails if a relative target does not exist on
disk. External links (http/https/mailto) are not fetched. Exit status
is the number of broken links, so CI fails on any.

Usage: python3 tools/check_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def check_file(md: Path, root: Path) -> list[str]:
    errors = []
    text = md.read_text(encoding="utf-8")
    # Strip fenced code blocks: command examples often contain
    # bracketed text that is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            errors.append(f"{md.relative_to(root)}: broken link -> {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    errors = []
    for md in files:
        errors.extend(check_file(md, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_links: {len(files)} files, {len(errors)} broken links")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
