/**
 * @file
 * trace_convert — encode, decode, inspect, and synthesize `.tlt`
 * traces (the compact binary trace format of docs/SAMPLING.md).
 *
 * Subcommands:
 *   encode IN.txt OUT.tlt [--index-stride N]
 *       Convert the documented text format into a tlt v1 binary.
 *   decode IN.tlt OUT.txt
 *       Expand a tlt binary back into the text format.
 *   info IN.tlt
 *       Print header counts, content hash, and encoding density.
 *   synth PROFILE OUT.tlt --instructions N [--seed S]
 *                         [--index-stride N]
 *       Capture N instructions of the named synthetic benchmark
 *       profile (see `tlsim_repro --list` for names) into a tlt
 *       file — a deterministic stand-in for an external capture.
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/logging.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/tracefile.hh"

namespace
{

using namespace tlsim;

int
usage(std::ostream &os, int code)
{
    os << "usage: trace_convert <command> [args]\n"
          "  encode IN.txt OUT.tlt [--index-stride N]\n"
          "  decode IN.tlt OUT.txt\n"
          "  info   IN.tlt\n"
          "  synth  PROFILE OUT.tlt --instructions N [--seed S]\n"
          "                         [--index-stride N]\n"
          "Text format: one record per line, '# ' comments:\n"
          "  <gap> L|S|I <hex-block-addr> [d][m]\n"
          "See docs/SAMPLING.md for the binary layout.\n";
    return code;
}

std::uint64_t
parseUint(const std::string &text, const char *what)
{
    std::size_t pos = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(text, &pos, 0);
    } catch (...) {
        pos = 0;
    }
    if (pos != text.size() || text.empty())
        fatal("trace_convert: bad {} '{}'", what, text);
    return value;
}

void
writeFile(const std::string &path, workload::TraceFileWriter &writer)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("trace_convert: cannot open '{}' for writing", path);
    writer.finish(os);
    os.flush();
    if (!os)
        fatal("trace_convert: write to '{}' failed", path);
}

int
cmdEncode(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    std::string in = argv[0];
    std::string out = argv[1];
    std::uint32_t stride = workload::tltDefaultIndexStride;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--index-stride") == 0 &&
            i + 1 < argc) {
            stride = static_cast<std::uint32_t>(
                parseUint(argv[++i], "--index-stride"));
        } else {
            return usage(std::cerr, 2);
        }
    }
    std::ifstream is(in);
    if (!is)
        fatal("trace_convert: cannot open '{}'", in);
    workload::TraceFileWriter writer(stride);
    std::uint64_t records = workload::parseTextTrace(is, writer, in);
    writeFile(out, writer);
    std::cout << "encoded " << records << " records, "
              << writer.instructionCount() << " instructions -> "
              << out << "\n";
    return 0;
}

int
cmdDecode(int argc, char **argv)
{
    if (argc != 2)
        return usage(std::cerr, 2);
    workload::TraceFile trace = workload::TraceFile::load(argv[0]);
    std::ofstream os(argv[1], std::ios::trunc);
    if (!os)
        fatal("trace_convert: cannot open '{}' for writing", argv[1]);
    os << "# tlsim text trace (decoded from " << trace.name()
       << ")\n";
    workload::TraceFileSource source(trace);
    for (std::uint64_t i = 0; i < trace.recordCount(); ++i)
        workload::formatTextRecord(os, source.next());
    os.flush();
    if (!os)
        fatal("trace_convert: write to '{}' failed", argv[1]);
    std::cout << "decoded " << trace.recordCount() << " records -> "
              << argv[1] << "\n";
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 1)
        return usage(std::cerr, 2);
    workload::TraceFile trace = workload::TraceFile::load(argv[0]);
    std::ifstream is(argv[0], std::ios::binary | std::ios::ate);
    std::uint64_t file_bytes =
        is ? static_cast<std::uint64_t>(is.tellg()) : 0;
    double per_record =
        trace.recordCount()
            ? static_cast<double>(file_bytes) /
                  static_cast<double>(trace.recordCount())
            : 0.0;
    std::cout << "file:          " << trace.name() << "\n"
              << "format:        tlt v" << workload::tltVersion
              << "\n"
              << "records:       " << trace.recordCount() << "\n"
              << "instructions:  " << trace.instructionCount() << "\n"
              << "index entries: " << trace.seekIndex().size() << "\n"
              << "file bytes:    " << file_bytes << " ("
              << per_record << " B/record)\n";
    std::cout << "content hash:  " << std::hex << trace.contentHash()
              << std::dec << "\n";
    return 0;
}

int
cmdSynth(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    std::string profile_name = argv[0];
    std::string out = argv[1];
    std::uint64_t instructions = 0;
    std::uint64_t seed = 0;
    std::uint32_t stride = workload::tltDefaultIndexStride;
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--instructions" && i + 1 < argc) {
            instructions = parseUint(argv[++i], "--instructions");
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = parseUint(argv[++i], "--seed");
        } else if (arg == "--index-stride" && i + 1 < argc) {
            stride = static_cast<std::uint32_t>(
                parseUint(argv[++i], "--index-stride"));
        } else {
            return usage(std::cerr, 2);
        }
    }
    if (instructions == 0)
        fatal("trace_convert: synth requires --instructions N");

    const workload::BenchmarkProfile &profile =
        workload::profileByName(profile_name);
    workload::TraceGenerator generator(profile, seed);
    workload::TraceFileWriter writer(stride);
    while (writer.instructionCount() < instructions)
        writer.append(generator.next());
    writeFile(out, writer);
    std::cout << "synthesized " << writer.recordCount()
              << " records, " << writer.instructionCount()
              << " instructions of '" << profile_name << "' -> "
              << out << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    std::string command = argv[1];
    if (command == "--help" || command == "-h")
        return usage(std::cout, 0);
    if (command == "encode")
        return cmdEncode(argc - 2, argv + 2);
    if (command == "decode")
        return cmdDecode(argc - 2, argv + 2);
    if (command == "info")
        return cmdInfo(argc - 2, argv + 2);
    if (command == "synth")
        return cmdSynth(argc - 2, argv + 2);
    std::cerr << "trace_convert: unknown command '" << command
              << "'\n";
    return usage(std::cerr, 2);
}
