# ctest driver of the trace-ingestion smoke (see tests/CMakeLists.txt):
# run the sampled+full validation twice against one checkpoint
# directory — the first run populates the warm checkpoints and the
# sampling plan, the second reaps them — leaving warm.json for
# check_sampling.py to validate speedup and accuracy bounds.
#
# Arguments: -DTLSIM_REPRO=<binary> -DTRACE=<file> -DOUTDIR=<dir>

file(REMOVE_RECURSE "${OUTDIR}")
file(MAKE_DIRECTORY "${OUTDIR}")

set(common
    --trace "${TRACE}" --intervals 3 --interval-size 50000
    --checkpoint-dir "${OUTDIR}/warm" --trace-validate --quiet)

execute_process(
    COMMAND "${TLSIM_REPRO}" ${common}
            --stats-json "${OUTDIR}/cold.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cold trace run failed (${rc})")
endif()

execute_process(
    COMMAND "${TLSIM_REPRO}" ${common}
            --stats-json "${OUTDIR}/warm.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "warm trace run failed (${rc})")
endif()
