file(REMOVE_RECURSE
  "CMakeFiles/signal_integrity.dir/signal_integrity.cpp.o"
  "CMakeFiles/signal_integrity.dir/signal_integrity.cpp.o.d"
  "signal_integrity"
  "signal_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
