# Empty dependencies file for signal_integrity.
# This may be replaced when dependencies are built.
