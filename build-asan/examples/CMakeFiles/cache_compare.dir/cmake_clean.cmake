file(REMOVE_RECURSE
  "CMakeFiles/cache_compare.dir/cache_compare.cpp.o"
  "CMakeFiles/cache_compare.dir/cache_compare.cpp.o.d"
  "cache_compare"
  "cache_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
