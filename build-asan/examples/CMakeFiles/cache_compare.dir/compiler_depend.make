# Empty compiler generated dependencies file for cache_compare.
# This may be replaced when dependencies are built.
