file(REMOVE_RECURSE
  "CMakeFiles/tlsim_workload.dir/generator.cc.o"
  "CMakeFiles/tlsim_workload.dir/generator.cc.o.d"
  "CMakeFiles/tlsim_workload.dir/profile.cc.o"
  "CMakeFiles/tlsim_workload.dir/profile.cc.o.d"
  "libtlsim_workload.a"
  "libtlsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
