# Empty dependencies file for tlsim_workload.
# This may be replaced when dependencies are built.
