file(REMOVE_RECURSE
  "libtlsim_workload.a"
)
