file(REMOVE_RECURSE
  "CMakeFiles/tlsim_harness.dir/config.cc.o"
  "CMakeFiles/tlsim_harness.dir/config.cc.o.d"
  "CMakeFiles/tlsim_harness.dir/papermodels.cc.o"
  "CMakeFiles/tlsim_harness.dir/papermodels.cc.o.d"
  "CMakeFiles/tlsim_harness.dir/sweep/resultcache.cc.o"
  "CMakeFiles/tlsim_harness.dir/sweep/resultcache.cc.o.d"
  "CMakeFiles/tlsim_harness.dir/sweep/runspec.cc.o"
  "CMakeFiles/tlsim_harness.dir/sweep/runspec.cc.o.d"
  "CMakeFiles/tlsim_harness.dir/sweep/sweep.cc.o"
  "CMakeFiles/tlsim_harness.dir/sweep/sweep.cc.o.d"
  "CMakeFiles/tlsim_harness.dir/system.cc.o"
  "CMakeFiles/tlsim_harness.dir/system.cc.o.d"
  "libtlsim_harness.a"
  "libtlsim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
