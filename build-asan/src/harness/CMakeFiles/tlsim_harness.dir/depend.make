# Empty dependencies file for tlsim_harness.
# This may be replaced when dependencies are built.
