file(REMOVE_RECURSE
  "libtlsim_harness.a"
)
