file(REMOVE_RECURSE
  "libtlsim_phys.a"
)
