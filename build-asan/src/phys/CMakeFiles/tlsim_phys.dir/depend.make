# Empty dependencies file for tlsim_phys.
# This may be replaced when dependencies are built.
