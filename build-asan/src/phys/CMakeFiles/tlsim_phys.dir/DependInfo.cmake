
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/crosstalk.cc" "src/phys/CMakeFiles/tlsim_phys.dir/crosstalk.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/crosstalk.cc.o.d"
  "/root/repo/src/phys/drivers.cc" "src/phys/CMakeFiles/tlsim_phys.dir/drivers.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/drivers.cc.o.d"
  "/root/repo/src/phys/fft.cc" "src/phys/CMakeFiles/tlsim_phys.dir/fft.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/fft.cc.o.d"
  "/root/repo/src/phys/fieldsolver.cc" "src/phys/CMakeFiles/tlsim_phys.dir/fieldsolver.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/fieldsolver.cc.o.d"
  "/root/repo/src/phys/geometry.cc" "src/phys/CMakeFiles/tlsim_phys.dir/geometry.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/geometry.cc.o.d"
  "/root/repo/src/phys/pulse.cc" "src/phys/CMakeFiles/tlsim_phys.dir/pulse.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/pulse.cc.o.d"
  "/root/repo/src/phys/rcwire.cc" "src/phys/CMakeFiles/tlsim_phys.dir/rcwire.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/rcwire.cc.o.d"
  "/root/repo/src/phys/switchmodel.cc" "src/phys/CMakeFiles/tlsim_phys.dir/switchmodel.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/switchmodel.cc.o.d"
  "/root/repo/src/phys/technology.cc" "src/phys/CMakeFiles/tlsim_phys.dir/technology.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/technology.cc.o.d"
  "/root/repo/src/phys/transline.cc" "src/phys/CMakeFiles/tlsim_phys.dir/transline.cc.o" "gcc" "src/phys/CMakeFiles/tlsim_phys.dir/transline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/tlsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
