file(REMOVE_RECURSE
  "CMakeFiles/tlsim_phys.dir/crosstalk.cc.o"
  "CMakeFiles/tlsim_phys.dir/crosstalk.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/drivers.cc.o"
  "CMakeFiles/tlsim_phys.dir/drivers.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/fft.cc.o"
  "CMakeFiles/tlsim_phys.dir/fft.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/fieldsolver.cc.o"
  "CMakeFiles/tlsim_phys.dir/fieldsolver.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/geometry.cc.o"
  "CMakeFiles/tlsim_phys.dir/geometry.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/pulse.cc.o"
  "CMakeFiles/tlsim_phys.dir/pulse.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/rcwire.cc.o"
  "CMakeFiles/tlsim_phys.dir/rcwire.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/switchmodel.cc.o"
  "CMakeFiles/tlsim_phys.dir/switchmodel.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/technology.cc.o"
  "CMakeFiles/tlsim_phys.dir/technology.cc.o.d"
  "CMakeFiles/tlsim_phys.dir/transline.cc.o"
  "CMakeFiles/tlsim_phys.dir/transline.cc.o.d"
  "libtlsim_phys.a"
  "libtlsim_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
