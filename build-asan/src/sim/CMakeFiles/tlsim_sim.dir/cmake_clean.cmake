file(REMOVE_RECURSE
  "CMakeFiles/tlsim_sim.dir/logging.cc.o"
  "CMakeFiles/tlsim_sim.dir/logging.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/stats.cc.o"
  "CMakeFiles/tlsim_sim.dir/stats.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/table.cc.o"
  "CMakeFiles/tlsim_sim.dir/table.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/trace/debug.cc.o"
  "CMakeFiles/tlsim_sim.dir/trace/debug.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/trace/options.cc.o"
  "CMakeFiles/tlsim_sim.dir/trace/options.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/trace/sampler.cc.o"
  "CMakeFiles/tlsim_sim.dir/trace/sampler.cc.o.d"
  "CMakeFiles/tlsim_sim.dir/trace/tracesink.cc.o"
  "CMakeFiles/tlsim_sim.dir/trace/tracesink.cc.o.d"
  "libtlsim_sim.a"
  "libtlsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
