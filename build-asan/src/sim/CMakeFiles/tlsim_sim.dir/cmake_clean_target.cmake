file(REMOVE_RECURSE
  "libtlsim_sim.a"
)
