# Empty dependencies file for tlsim_sim.
# This may be replaced when dependencies are built.
