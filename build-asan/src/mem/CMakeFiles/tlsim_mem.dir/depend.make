# Empty dependencies file for tlsim_mem.
# This may be replaced when dependencies are built.
