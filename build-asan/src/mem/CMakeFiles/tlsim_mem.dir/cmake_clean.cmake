file(REMOVE_RECURSE
  "CMakeFiles/tlsim_mem.dir/dram.cc.o"
  "CMakeFiles/tlsim_mem.dir/dram.cc.o.d"
  "CMakeFiles/tlsim_mem.dir/l1cache.cc.o"
  "CMakeFiles/tlsim_mem.dir/l1cache.cc.o.d"
  "CMakeFiles/tlsim_mem.dir/l2registry.cc.o"
  "CMakeFiles/tlsim_mem.dir/l2registry.cc.o.d"
  "libtlsim_mem.a"
  "libtlsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
