file(REMOVE_RECURSE
  "libtlsim_mem.a"
)
