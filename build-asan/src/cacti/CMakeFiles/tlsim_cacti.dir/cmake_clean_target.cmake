file(REMOVE_RECURSE
  "libtlsim_cacti.a"
)
