file(REMOVE_RECURSE
  "CMakeFiles/tlsim_cacti.dir/srambank.cc.o"
  "CMakeFiles/tlsim_cacti.dir/srambank.cc.o.d"
  "libtlsim_cacti.a"
  "libtlsim_cacti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_cacti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
