# Empty dependencies file for tlsim_cacti.
# This may be replaced when dependencies are built.
