file(REMOVE_RECURSE
  "libtlsim_noc.a"
)
