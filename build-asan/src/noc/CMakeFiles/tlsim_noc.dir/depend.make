# Empty dependencies file for tlsim_noc.
# This may be replaced when dependencies are built.
