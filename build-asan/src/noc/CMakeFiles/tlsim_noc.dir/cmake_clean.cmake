file(REMOVE_RECURSE
  "CMakeFiles/tlsim_noc.dir/mesh.cc.o"
  "CMakeFiles/tlsim_noc.dir/mesh.cc.o.d"
  "libtlsim_noc.a"
  "libtlsim_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
