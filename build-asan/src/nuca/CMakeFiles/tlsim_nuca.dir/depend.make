# Empty dependencies file for tlsim_nuca.
# This may be replaced when dependencies are built.
