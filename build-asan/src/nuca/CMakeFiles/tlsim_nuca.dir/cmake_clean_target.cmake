file(REMOVE_RECURSE
  "libtlsim_nuca.a"
)
