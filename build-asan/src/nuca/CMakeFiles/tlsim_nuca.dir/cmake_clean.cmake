file(REMOVE_RECURSE
  "CMakeFiles/tlsim_nuca.dir/bankset.cc.o"
  "CMakeFiles/tlsim_nuca.dir/bankset.cc.o.d"
  "CMakeFiles/tlsim_nuca.dir/dnuca.cc.o"
  "CMakeFiles/tlsim_nuca.dir/dnuca.cc.o.d"
  "CMakeFiles/tlsim_nuca.dir/snuca.cc.o"
  "CMakeFiles/tlsim_nuca.dir/snuca.cc.o.d"
  "libtlsim_nuca.a"
  "libtlsim_nuca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_nuca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
