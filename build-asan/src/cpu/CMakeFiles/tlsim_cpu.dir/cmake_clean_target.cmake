file(REMOVE_RECURSE
  "libtlsim_cpu.a"
)
