file(REMOVE_RECURSE
  "CMakeFiles/tlsim_cpu.dir/ooocore.cc.o"
  "CMakeFiles/tlsim_cpu.dir/ooocore.cc.o.d"
  "libtlsim_cpu.a"
  "libtlsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
