# Empty dependencies file for tlsim_cpu.
# This may be replaced when dependencies are built.
