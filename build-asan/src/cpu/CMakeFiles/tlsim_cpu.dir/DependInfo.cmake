
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/ooocore.cc" "src/cpu/CMakeFiles/tlsim_cpu.dir/ooocore.cc.o" "gcc" "src/cpu/CMakeFiles/tlsim_cpu.dir/ooocore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/mem/CMakeFiles/tlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/tlsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
