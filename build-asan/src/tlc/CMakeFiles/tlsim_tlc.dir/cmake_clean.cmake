file(REMOVE_RECURSE
  "CMakeFiles/tlsim_tlc.dir/config.cc.o"
  "CMakeFiles/tlsim_tlc.dir/config.cc.o.d"
  "CMakeFiles/tlsim_tlc.dir/floorplan.cc.o"
  "CMakeFiles/tlsim_tlc.dir/floorplan.cc.o.d"
  "CMakeFiles/tlsim_tlc.dir/tlccache.cc.o"
  "CMakeFiles/tlsim_tlc.dir/tlccache.cc.o.d"
  "libtlsim_tlc.a"
  "libtlsim_tlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_tlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
