file(REMOVE_RECURSE
  "libtlsim_tlc.a"
)
