# Empty dependencies file for tlsim_tlc.
# This may be replaced when dependencies are built.
