file(REMOVE_RECURSE
  "CMakeFiles/docs_linkcheck"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/docs_linkcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
