# Empty custom commands generated dependencies file for docs_linkcheck.
# This may be replaced when dependencies are built.
