# Empty custom commands generated dependencies file for docs.
# This may be replaced when dependencies are built.
