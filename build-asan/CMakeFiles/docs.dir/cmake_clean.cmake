
# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/docs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
