# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-asan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[docs_linkcheck]=] "/root/.pyenv/shims/python3" "/root/repo/tools/check_links.py" "/root/repo")
set_tests_properties([=[docs_linkcheck]=] PROPERTIES  LABELS "quick" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
subdirs("bench")
subdirs("examples")
