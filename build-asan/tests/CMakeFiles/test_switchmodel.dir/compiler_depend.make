# Empty compiler generated dependencies file for test_switchmodel.
# This may be replaced when dependencies are built.
