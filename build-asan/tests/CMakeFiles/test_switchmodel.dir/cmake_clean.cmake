file(REMOVE_RECURSE
  "CMakeFiles/test_switchmodel.dir/test_switchmodel.cc.o"
  "CMakeFiles/test_switchmodel.dir/test_switchmodel.cc.o.d"
  "test_switchmodel"
  "test_switchmodel.pdb"
  "test_switchmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switchmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
