file(REMOVE_RECURSE
  "CMakeFiles/test_setassoc.dir/test_setassoc.cc.o"
  "CMakeFiles/test_setassoc.dir/test_setassoc.cc.o.d"
  "test_setassoc"
  "test_setassoc.pdb"
  "test_setassoc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_setassoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
