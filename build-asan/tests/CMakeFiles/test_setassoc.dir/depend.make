# Empty dependencies file for test_setassoc.
# This may be replaced when dependencies are built.
