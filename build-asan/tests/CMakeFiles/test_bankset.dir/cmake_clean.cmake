file(REMOVE_RECURSE
  "CMakeFiles/test_bankset.dir/test_bankset.cc.o"
  "CMakeFiles/test_bankset.dir/test_bankset.cc.o.d"
  "test_bankset"
  "test_bankset.pdb"
  "test_bankset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bankset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
