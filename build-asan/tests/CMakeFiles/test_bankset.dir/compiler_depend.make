# Empty compiler generated dependencies file for test_bankset.
# This may be replaced when dependencies are built.
