file(REMOVE_RECURSE
  "CMakeFiles/test_statsjson.dir/test_statsjson.cc.o"
  "CMakeFiles/test_statsjson.dir/test_statsjson.cc.o.d"
  "test_statsjson"
  "test_statsjson.pdb"
  "test_statsjson[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statsjson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
