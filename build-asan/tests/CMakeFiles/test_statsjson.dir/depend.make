# Empty dependencies file for test_statsjson.
# This may be replaced when dependencies are built.
