# Empty dependencies file for test_tracesink.
# This may be replaced when dependencies are built.
