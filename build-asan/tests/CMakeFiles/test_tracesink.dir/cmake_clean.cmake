file(REMOVE_RECURSE
  "CMakeFiles/test_tracesink.dir/test_tracesink.cc.o"
  "CMakeFiles/test_tracesink.dir/test_tracesink.cc.o.d"
  "test_tracesink"
  "test_tracesink.pdb"
  "test_tracesink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracesink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
