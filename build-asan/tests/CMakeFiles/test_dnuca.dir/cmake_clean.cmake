file(REMOVE_RECURSE
  "CMakeFiles/test_dnuca.dir/test_dnuca.cc.o"
  "CMakeFiles/test_dnuca.dir/test_dnuca.cc.o.d"
  "test_dnuca"
  "test_dnuca.pdb"
  "test_dnuca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnuca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
