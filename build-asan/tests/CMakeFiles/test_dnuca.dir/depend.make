# Empty dependencies file for test_dnuca.
# This may be replaced when dependencies are built.
