file(REMOVE_RECURSE
  "CMakeFiles/test_breakdown.dir/test_breakdown.cc.o"
  "CMakeFiles/test_breakdown.dir/test_breakdown.cc.o.d"
  "test_breakdown"
  "test_breakdown.pdb"
  "test_breakdown[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
