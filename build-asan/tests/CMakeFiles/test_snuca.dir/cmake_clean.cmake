file(REMOVE_RECURSE
  "CMakeFiles/test_snuca.dir/test_snuca.cc.o"
  "CMakeFiles/test_snuca.dir/test_snuca.cc.o.d"
  "test_snuca"
  "test_snuca.pdb"
  "test_snuca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snuca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
