# Empty compiler generated dependencies file for test_snuca.
# This may be replaced when dependencies are built.
