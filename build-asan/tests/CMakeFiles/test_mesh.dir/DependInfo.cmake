
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mesh.cc" "tests/CMakeFiles/test_mesh.dir/test_mesh.cc.o" "gcc" "tests/CMakeFiles/test_mesh.dir/test_mesh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/harness/CMakeFiles/tlsim_harness.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workload/CMakeFiles/tlsim_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/tlsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/tlsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/noc/CMakeFiles/tlsim_noc.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cacti/CMakeFiles/tlsim_cacti.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/phys/CMakeFiles/tlsim_phys.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/tlsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/nuca/CMakeFiles/tlsim_nuca.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/tlc/CMakeFiles/tlsim_tlc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
