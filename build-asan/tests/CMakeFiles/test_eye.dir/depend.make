# Empty dependencies file for test_eye.
# This may be replaced when dependencies are built.
