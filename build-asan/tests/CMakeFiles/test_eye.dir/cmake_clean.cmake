file(REMOVE_RECURSE
  "CMakeFiles/test_eye.dir/test_eye.cc.o"
  "CMakeFiles/test_eye.dir/test_eye.cc.o.d"
  "test_eye"
  "test_eye.pdb"
  "test_eye[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eye.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
