file(REMOVE_RECURSE
  "CMakeFiles/test_crosstalk.dir/test_crosstalk.cc.o"
  "CMakeFiles/test_crosstalk.dir/test_crosstalk.cc.o.d"
  "test_crosstalk"
  "test_crosstalk.pdb"
  "test_crosstalk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crosstalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
