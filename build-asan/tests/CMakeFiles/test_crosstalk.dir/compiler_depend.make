# Empty compiler generated dependencies file for test_crosstalk.
# This may be replaced when dependencies are built.
