file(REMOVE_RECURSE
  "CMakeFiles/test_eventq.dir/test_eventq.cc.o"
  "CMakeFiles/test_eventq.dir/test_eventq.cc.o.d"
  "test_eventq"
  "test_eventq.pdb"
  "test_eventq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eventq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
