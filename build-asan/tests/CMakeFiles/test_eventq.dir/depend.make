# Empty dependencies file for test_eventq.
# This may be replaced when dependencies are built.
