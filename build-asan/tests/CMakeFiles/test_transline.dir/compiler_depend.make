# Empty compiler generated dependencies file for test_transline.
# This may be replaced when dependencies are built.
