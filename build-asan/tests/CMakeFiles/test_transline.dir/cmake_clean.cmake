file(REMOVE_RECURSE
  "CMakeFiles/test_transline.dir/test_transline.cc.o"
  "CMakeFiles/test_transline.dir/test_transline.cc.o.d"
  "test_transline"
  "test_transline.pdb"
  "test_transline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
