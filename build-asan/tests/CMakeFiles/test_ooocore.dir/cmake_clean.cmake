file(REMOVE_RECURSE
  "CMakeFiles/test_ooocore.dir/test_ooocore.cc.o"
  "CMakeFiles/test_ooocore.dir/test_ooocore.cc.o.d"
  "test_ooocore"
  "test_ooocore.pdb"
  "test_ooocore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ooocore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
