# Empty compiler generated dependencies file for test_ooocore.
# This may be replaced when dependencies are built.
