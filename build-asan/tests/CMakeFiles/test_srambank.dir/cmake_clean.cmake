file(REMOVE_RECURSE
  "CMakeFiles/test_srambank.dir/test_srambank.cc.o"
  "CMakeFiles/test_srambank.dir/test_srambank.cc.o.d"
  "test_srambank"
  "test_srambank.pdb"
  "test_srambank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srambank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
