# Empty dependencies file for test_srambank.
# This may be replaced when dependencies are built.
