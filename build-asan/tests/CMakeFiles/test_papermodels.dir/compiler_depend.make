# Empty compiler generated dependencies file for test_papermodels.
# This may be replaced when dependencies are built.
