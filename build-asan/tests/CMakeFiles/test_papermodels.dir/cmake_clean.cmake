file(REMOVE_RECURSE
  "CMakeFiles/test_papermodels.dir/test_papermodels.cc.o"
  "CMakeFiles/test_papermodels.dir/test_papermodels.cc.o.d"
  "test_papermodels"
  "test_papermodels.pdb"
  "test_papermodels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_papermodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
