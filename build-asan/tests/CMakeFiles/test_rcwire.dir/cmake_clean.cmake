file(REMOVE_RECURSE
  "CMakeFiles/test_rcwire.dir/test_rcwire.cc.o"
  "CMakeFiles/test_rcwire.dir/test_rcwire.cc.o.d"
  "test_rcwire"
  "test_rcwire.pdb"
  "test_rcwire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcwire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
