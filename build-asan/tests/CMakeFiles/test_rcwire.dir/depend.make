# Empty dependencies file for test_rcwire.
# This may be replaced when dependencies are built.
