# Empty dependencies file for test_l1cache.
# This may be replaced when dependencies are built.
