file(REMOVE_RECURSE
  "CMakeFiles/test_l1cache.dir/test_l1cache.cc.o"
  "CMakeFiles/test_l1cache.dir/test_l1cache.cc.o.d"
  "test_l1cache"
  "test_l1cache.pdb"
  "test_l1cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_l1cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
