file(REMOVE_RECURSE
  "CMakeFiles/test_tlc.dir/test_tlc.cc.o"
  "CMakeFiles/test_tlc.dir/test_tlc.cc.o.d"
  "test_tlc"
  "test_tlc.pdb"
  "test_tlc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
