# Empty compiler generated dependencies file for test_tlc.
# This may be replaced when dependencies are built.
