# Empty dependencies file for test_fieldsolver.
# This may be replaced when dependencies are built.
