file(REMOVE_RECURSE
  "CMakeFiles/test_fieldsolver.dir/test_fieldsolver.cc.o"
  "CMakeFiles/test_fieldsolver.dir/test_fieldsolver.cc.o.d"
  "test_fieldsolver"
  "test_fieldsolver.pdb"
  "test_fieldsolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fieldsolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
