# Empty compiler generated dependencies file for bench_ablation_ecc.
# This may be replaced when dependencies are built.
