file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ecc.dir/bench_ablation_ecc.cc.o"
  "CMakeFiles/bench_ablation_ecc.dir/bench_ablation_ecc.cc.o.d"
  "bench_ablation_ecc"
  "bench_ablation_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
