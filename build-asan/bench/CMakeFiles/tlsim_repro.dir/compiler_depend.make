# Empty compiler generated dependencies file for tlsim_repro.
# This may be replaced when dependencies are built.
