file(REMOVE_RECURSE
  "CMakeFiles/tlsim_repro.dir/tlsim_repro.cc.o"
  "CMakeFiles/tlsim_repro.dir/tlsim_repro.cc.o.d"
  "tlsim_repro"
  "tlsim_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
