# Empty compiler generated dependencies file for bench_ablation_drivers.
# This may be replaced when dependencies are built.
