file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_drivers.dir/bench_ablation_drivers.cc.o"
  "CMakeFiles/bench_ablation_drivers.dir/bench_ablation_drivers.cc.o.d"
  "bench_ablation_drivers"
  "bench_ablation_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
