# Empty dependencies file for bench_table8_transistors.
# This may be replaced when dependencies are built.
