file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_transistors.dir/bench_table8_transistors.cc.o"
  "CMakeFiles/bench_table8_transistors.dir/bench_table8_transistors.cc.o.d"
  "bench_table8_transistors"
  "bench_table8_transistors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_transistors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
