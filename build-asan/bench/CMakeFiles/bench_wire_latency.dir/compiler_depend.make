# Empty compiler generated dependencies file for bench_wire_latency.
# This may be replaced when dependencies are built.
