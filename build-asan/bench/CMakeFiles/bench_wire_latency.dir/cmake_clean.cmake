file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_latency.dir/bench_wire_latency.cc.o"
  "CMakeFiles/bench_wire_latency.dir/bench_wire_latency.cc.o.d"
  "bench_wire_latency"
  "bench_wire_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
