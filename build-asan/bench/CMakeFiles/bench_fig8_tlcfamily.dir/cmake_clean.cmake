file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tlcfamily.dir/bench_fig8_tlcfamily.cc.o"
  "CMakeFiles/bench_fig8_tlcfamily.dir/bench_fig8_tlcfamily.cc.o.d"
  "bench_fig8_tlcfamily"
  "bench_fig8_tlcfamily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tlcfamily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
