file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_characteristics.dir/bench_table6_characteristics.cc.o"
  "CMakeFiles/bench_table6_characteristics.dir/bench_table6_characteristics.cc.o.d"
  "bench_table6_characteristics"
  "bench_table6_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
