# Empty compiler generated dependencies file for bench_ablation_ptag.
# This may be replaced when dependencies are built.
