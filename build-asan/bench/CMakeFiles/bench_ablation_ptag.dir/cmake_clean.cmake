file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ptag.dir/bench_ablation_ptag.cc.o"
  "CMakeFiles/bench_ablation_ptag.dir/bench_ablation_ptag.cc.o.d"
  "bench_ablation_ptag"
  "bench_ablation_ptag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ptag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
