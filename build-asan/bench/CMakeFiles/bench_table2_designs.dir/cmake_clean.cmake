file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_designs.dir/bench_table2_designs.cc.o"
  "CMakeFiles/bench_table2_designs.dir/bench_table2_designs.cc.o.d"
  "bench_table2_designs"
  "bench_table2_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
