# Empty compiler generated dependencies file for bench_ablation_shielding.
# This may be replaced when dependencies are built.
