file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shielding.dir/bench_ablation_shielding.cc.o"
  "CMakeFiles/bench_ablation_shielding.dir/bench_ablation_shielding.cc.o.d"
  "bench_ablation_shielding"
  "bench_ablation_shielding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shielding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
