file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_promotion.dir/bench_ablation_promotion.cc.o"
  "CMakeFiles/bench_ablation_promotion.dir/bench_ablation_promotion.cc.o.d"
  "bench_ablation_promotion"
  "bench_ablation_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
