# Empty dependencies file for bench_ablation_promotion.
# This may be replaced when dependencies are built.
