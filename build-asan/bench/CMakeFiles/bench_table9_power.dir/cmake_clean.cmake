file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_power.dir/bench_table9_power.cc.o"
  "CMakeFiles/bench_table9_power.dir/bench_table9_power.cc.o.d"
  "bench_table9_power"
  "bench_table9_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
