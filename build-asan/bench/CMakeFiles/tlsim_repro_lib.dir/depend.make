# Empty dependencies file for tlsim_repro_lib.
# This may be replaced when dependencies are built.
