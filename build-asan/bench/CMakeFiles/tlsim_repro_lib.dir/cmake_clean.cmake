file(REMOVE_RECURSE
  "CMakeFiles/tlsim_repro_lib.dir/repro/experiments.cc.o"
  "CMakeFiles/tlsim_repro_lib.dir/repro/experiments.cc.o.d"
  "CMakeFiles/tlsim_repro_lib.dir/repro/reprocli.cc.o"
  "CMakeFiles/tlsim_repro_lib.dir/repro/reprocli.cc.o.d"
  "libtlsim_repro_lib.a"
  "libtlsim_repro_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlsim_repro_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
