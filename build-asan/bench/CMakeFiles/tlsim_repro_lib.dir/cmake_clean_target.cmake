file(REMOVE_RECURSE
  "libtlsim_repro_lib.a"
)
