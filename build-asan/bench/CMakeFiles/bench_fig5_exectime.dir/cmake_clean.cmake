file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_exectime.dir/bench_fig5_exectime.cc.o"
  "CMakeFiles/bench_fig5_exectime.dir/bench_fig5_exectime.cc.o.d"
  "bench_fig5_exectime"
  "bench_fig5_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
