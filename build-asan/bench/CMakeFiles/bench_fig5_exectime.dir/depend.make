# Empty dependencies file for bench_fig5_exectime.
# This may be replaced when dependencies are built.
