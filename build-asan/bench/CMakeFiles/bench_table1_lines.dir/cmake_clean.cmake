file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lines.dir/bench_table1_lines.cc.o"
  "CMakeFiles/bench_table1_lines.dir/bench_table1_lines.cc.o.d"
  "bench_table1_lines"
  "bench_table1_lines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
