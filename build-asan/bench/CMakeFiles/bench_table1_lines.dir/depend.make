# Empty dependencies file for bench_table1_lines.
# This may be replaced when dependencies are built.
