/**
 * @file
 * Head-to-head cache architecture comparison: SNUCA2 vs DNUCA vs TLC
 * on one workload — the paper's core experiment, on demand.
 *
 *   $ ./examples/cache_compare [benchmark] [instructions]
 */

#include <cstdlib>
#include <iostream>

#include "harness/system.hh"
#include "sim/table.hh"
#include "sim/trace/options.hh"

using namespace tlsim;
using harness::DesignKind;

int
main(int argc, char **argv)
{
    trace::Observability obs(argc, argv);
    std::string bench = argc > 1 ? argv[1] : "mcf";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3'000'000;
    const auto &profile = workload::profileByName(bench);

    TextTable table("SNUCA2 vs DNUCA vs TLC on '" + bench + "'");
    table.setHeader({"Design", "IPC", "Norm. time", "Lookup [cyc]",
                     "Predictable %", "Miss/1K", "Banks/req",
                     "Net power [mW]"});

    double base_cycles = 0.0;
    for (DesignKind kind : {DesignKind::Snuca2, DesignKind::Dnuca,
                            DesignKind::TlcBase}) {
        std::cerr << "  running " << harness::designName(kind)
                  << "...\n";
        auto result = harness::runBenchmark(kind, profile, 1'000'000,
                                            instructions, 0,
                                            100'000'000);
        if (base_cycles == 0.0)
            base_cycles = static_cast<double>(result.cycles);
        table.addRow({result.design, TextTable::num(result.ipc, 3),
                      TextTable::num(result.cycles / base_cycles, 3),
                      TextTable::num(result.meanLookupLatency, 1),
                      TextTable::num(result.predictablePct, 1),
                      TextTable::num(result.l2MissesPer1k, 3),
                      TextTable::num(result.banksPerRequest, 2),
                      TextTable::num(result.networkPowerMw, 0)});
    }
    table.print(std::cout);

    std::cout << "\nExpect: DNUCA and TLC both beat SNUCA2; TLC's "
                 "lookup latency sits near 13 cycles with the "
                 "highest predictability (paper Figures 5/6).\n";
    return 0;
}
