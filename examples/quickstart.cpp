/**
 * @file
 * Quickstart: build a complete simulated system around the base
 * Transmission Line Cache, run a benchmark on it, and read out the
 * headline metrics.
 *
 *   $ ./examples/quickstart [benchmark] [instructions]
 *
 * Defaults to 2M measured instructions of "gcc". Observability
 * options (see docs/OBSERVABILITY.md):
 *
 *   --trace-out=run.trace.json   Chrome trace of the measured phase
 *   --stats-json=run.stats.json  final stats as JSON
 *   --stats-series=ts.jsonl      periodic stat samples
 *   --debug-flags=L2,NoC         debug prints to stderr
 */

#include <cstdlib>
#include <iostream>
#include <memory>

#include "harness/system.hh"
#include "sim/table.hh"
#include "sim/trace/options.hh"

using namespace tlsim;

int
main(int argc, char **argv)
{
    trace::Observability obs(argc, argv);

    std::string bench = argc > 1 ? argv[1] : "gcc";
    std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2'000'000;

    // 1. Pick a workload profile (the 12 paper benchmarks ship with
    //    the library; see workload::paperBenchmarks()).
    const auto &profile = workload::profileByName(bench);

    // 2. Run it on the base TLC design. runBenchmark() assembles the
    //    whole machine: 4-wide OoO core, split 64 KB L1s, the 16 MB
    //    L2 design under test, and DRAM; warms the caches; measures.
    //    The observer attaches the periodic stat sampler over the
    //    measured phase and dumps final stats JSON, if requested.
    std::unique_ptr<trace::StatSampler> sampler;
    harness::RunObserver observer;
    observer.onMeasureBegin = [&](harness::System &sys) {
        sampler = obs.makeSampler(sys.eventQueue(), sys.root());
    };
    observer.onMeasureEnd = [&](harness::System &sys) {
        sampler.reset();
        obs.dumpFinalStats(sys.root());
    };
    harness::RunResult result = harness::runBenchmark(
        harness::DesignKind::TlcBase, profile,
        /*warm_instructions=*/1'000'000, instructions,
        /*run_seed=*/0, /*functional_warm=*/50'000'000, &observer);

    // 3. Read out the metrics the paper's evaluation is built from.
    TextTable table("Quickstart: " + bench + " on the base TLC");
    table.setHeader({"Metric", "Value"});
    table.addRow({"instructions", std::to_string(result.instructions)});
    table.addRow({"cycles", std::to_string(result.cycles)});
    table.addRow({"IPC", TextTable::num(result.ipc, 3)});
    table.addRow({"L2 requests / 1K instr",
                  TextTable::num(result.l2RequestsPer1k, 1)});
    table.addRow({"L2 misses / 1K instr",
                  TextTable::num(result.l2MissesPer1k, 3)});
    table.addRow({"mean L2 lookup latency [cycles]",
                  TextTable::num(result.meanLookupLatency, 1)});
    table.addRow({"predictable lookups [%]",
                  TextTable::num(result.predictablePct, 1)});
    table.addRow({"link utilization [%]",
                  TextTable::num(result.linkUtilizationPct, 2)});
    table.addRow({"network dynamic power [mW]",
                  TextTable::num(result.networkPowerMw, 1)});
    // Where did the L2 latency go? (per-request means; DRAM only
    // contributes on misses). Each mean carries its sample count: a
    // distribution nothing sampled (e.g. dram on a run with no
    // misses) reads "n/a (n=0)", not a misleading 0.00.
    auto breakdown = [](double mean, std::uint64_t n) {
        std::string cell =
            n ? TextTable::num(mean, 2) : std::string("n/a");
        return cell + " (n=" + std::to_string(n) + ")";
    };
    table.addRow({"  breakdown: queue wait [cycles]",
                  breakdown(result.queueWaitMean,
                            result.queueWaitSamples)});
    table.addRow({"  breakdown: wire [cycles]",
                  breakdown(result.wireMean, result.wireSamples)});
    table.addRow({"  breakdown: bank [cycles]",
                  breakdown(result.bankMean, result.bankSamples)});
    table.addRow({"  breakdown: dram [cycles]",
                  breakdown(result.dramMean, result.dramSamples)});
    table.print(std::cout);

    std::cout << "\nTry: quickstart mcf, or compare designs with the "
                 "cache_compare example.\n";
    return 0;
}
