/**
 * @file
 * Signal-integrity exploration: launch a 10 GHz pulse down an on-chip
 * transmission line and inspect the received waveform — the physics
 * behind TLC's one-cycle cross-chip flight (paper Section 3).
 *
 *   $ ./examples/signal_integrity [length_cm]
 */

#include <cstdlib>
#include <iostream>

#include "phys/fieldsolver.hh"
#include "phys/geometry.hh"
#include "phys/pulse.hh"
#include "phys/technology.hh"
#include "sim/table.hh"

using namespace tlsim;
using namespace tlsim::phys;

int
main(int argc, char **argv)
{
    double length_cm = argc > 1 ? std::strtod(argv[1], nullptr) : 1.1;
    double length = length_cm * 1e-2;

    const Technology &tech = tech45();
    const auto &spec = specForLength(length);
    FieldSolver solver(tech);
    LineParams params = solver.extract(spec.geometry);

    std::cout << "Line: " << length_cm << " cm, W=S="
              << spec.geometry.width * 1e6 << " um stripline\n";
    std::cout << "  Z0 = " << TextTable::num(params.z0(), 1)
              << " Ohm, velocity = "
              << TextTable::num(params.velocity() / 1e8, 2)
              << "e8 m/s, DC R = "
              << TextTable::num(params.resistance * length, 1)
              << " Ohm end-to-end\n";
    std::cout << "  skin depth @ 10 GHz = "
              << TextTable::num(solver.skinDepth(10e9) * 1e6, 2)
              << " um\n\n";

    PulseSimulator pulses(tech);
    PulseResult result = pulses.simulate(spec.geometry, length);
    std::cout << "Received pulse: delay = "
              << TextTable::num(result.delay / 1e-12, 1)
              << " ps, peak = "
              << TextTable::num(100.0 * result.peakAmplitude, 1)
              << "% Vdd, width = "
              << TextTable::num(result.pulseWidth / 1e-12, 1)
              << " ps -> "
              << (result.passes() ? "PASSES" : "FAILS")
              << " the paper's signalling requirements\n\n";

    // ASCII waveform, decimated.
    auto wave = pulses.waveform(spec.geometry, length);
    const double dt_ps = pulses.sampleTime() / 1e-12;
    const int columns = 64;
    std::size_t span = wave.size() / 2; // first 4 cycles
    std::cout << "Receiver waveform (x: time, #: volts):\n";
    for (int row = 10; row >= 0; --row) {
        double level = row / 10.0;
        std::cout << (row % 5 == 0 ? TextTable::num(level, 1)
                                   : std::string("   "))
                  << " |";
        for (int col = 0; col < columns; ++col) {
            std::size_t idx = col * span / columns;
            std::cout << (wave[idx] >= level - 0.05 ? '#' : ' ');
        }
        std::cout << '\n';
    }
    std::cout << "    +" << std::string(columns, '-') << "\n     0"
              << std::string(columns - 8, ' ')
              << TextTable::num(span * dt_ps, 0) << " ps\n";
    return 0;
}
