/**
 * @file
 * Design-space walk over the TLC family: how trading transmission
 * lines for latency/bandwidth moves wires, controller area, link
 * utilization, and performance (paper Section 4 / Section 6.2).
 *
 *   $ ./examples/design_space [benchmark]
 */

#include <iostream>

#include "harness/system.hh"
#include "mem/dram.hh"
#include "sim/table.hh"
#include "sim/trace/options.hh"
#include "tlc/config.hh"
#include "tlc/floorplan.hh"
#include "tlc/tlccache.hh"

using namespace tlsim;

int
main(int argc, char **argv)
{
    trace::Observability obs(argc, argv);
    std::string bench = argc > 1 ? argv[1] : "apache";
    const auto &profile = workload::profileByName(bench);

    TextTable table("TLC design space on '" + bench + "'");
    table.setHeader({"Design", "Lines", "Ctrl area [mm^2]",
                     "Latency [cyc]", "Lookup [cyc]", "Util [%]",
                     "Cycles (norm)"});

    double base_cycles = 0.0;
    for (harness::DesignKind kind : harness::tlcFamily()) {
        std::cerr << "  running " << harness::designName(kind)
                  << "...\n";
        auto result = harness::runBenchmark(kind, profile, 500'000,
                                            2'000'000, 0, 50'000'000);
        // Rebuild the config/floorplan for the static facts.
        tlc::TlcConfig cfg =
            tlc::configByName(harness::designName(kind));
        tlc::TlcFloorplan floorplan(phys::tech45(), cfg);
        EventQueue eq;
        stats::StatGroup root("root");
        mem::Dram dram(eq, &root);
        tlc::TlcCache probe(eq, &root, dram, phys::tech45(), cfg);
        auto [lo, hi] = probe.latencyRange();

        if (base_cycles == 0.0)
            base_cycles = static_cast<double>(result.cycles);
        table.addRow({cfg.name, std::to_string(cfg.totalLines()),
                      TextTable::num(floorplan.controllerArea() / 1e-6,
                                     1),
                      std::to_string(lo) + "-" + std::to_string(hi),
                      TextTable::num(result.meanLookupLatency, 1),
                      TextTable::num(result.linkUtilizationPct, 2),
                      TextTable::num(result.cycles / base_cycles, 3)});
    }
    table.print(std::cout);
    std::cout << "\nThe 6x wire reduction (2048 -> 352) costs only a "
                 "few percent of performance: the base design is "
                 "over-provisioned (Figures 7/8).\n";
    return 0;
}
